//! Plain-text triple I/O.
//!
//! Format: one `user item rating` triple per line, whitespace-separated —
//! compatible with the MovieLens/LIBMF text convention. Dimensions are
//! inferred as `max index + 1` unless given explicitly.

use crate::coo::{CooMatrix, Rating};
use crate::error::SparseError;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Reads triples from any reader. Blank lines and lines starting with `#` or
/// `%` are skipped.
pub fn read_triples<R: Read>(reader: R) -> Result<CooMatrix, SparseError> {
    let reader = BufReader::new(reader);
    let mut entries = Vec::new();
    let mut max_u = 0u32;
    let mut max_i = 0u32;
    let mut line = String::new();
    let mut reader = reader;
    let mut lineno = 0usize;
    loop {
        line.clear();
        lineno += 1;
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse_err = |message: &str| SparseError::Parse {
            line: lineno,
            message: message.to_string(),
        };
        let u: u32 = parts
            .next()
            .ok_or_else(|| parse_err("missing user"))?
            .parse()
            .map_err(|_| parse_err("bad user index"))?;
        let i: u32 = parts
            .next()
            .ok_or_else(|| parse_err("missing item"))?
            .parse()
            .map_err(|_| parse_err("bad item index"))?;
        let r: f32 = parts
            .next()
            .ok_or_else(|| parse_err("missing rating"))?
            .parse()
            .map_err(|_| parse_err("bad rating"))?;
        if !r.is_finite() {
            return Err(parse_err("non-finite rating"));
        }
        if u == u32::MAX || i == u32::MAX {
            // Dimensions are max index + 1; u32::MAX would overflow them.
            return Err(parse_err("index too large for u32 dimensions"));
        }
        max_u = max_u.max(u);
        max_i = max_i.max(i);
        entries.push(Rating::new(u, i, r));
    }
    if entries.is_empty() {
        return Err(SparseError::EmptyDimension {
            what: "input (no triples)",
        });
    }
    CooMatrix::new(max_u + 1, max_i + 1, entries)
}

/// Reads a triple file from disk.
pub fn read_triples_file<P: AsRef<Path>>(path: P) -> Result<CooMatrix, SparseError> {
    let file = std::fs::File::open(path)?;
    read_triples(file)
}

/// Writes triples to any writer, one per line.
pub fn write_triples<W: Write>(matrix: &CooMatrix, writer: W) -> Result<(), SparseError> {
    let mut out = BufWriter::new(writer);
    for e in matrix.entries() {
        writeln!(out, "{} {} {}", e.u, e.i, e.r)?;
    }
    out.flush()?;
    Ok(())
}

/// Writes a triple file to disk.
pub fn write_triples_file<P: AsRef<Path>>(matrix: &CooMatrix, path: P) -> Result<(), SparseError> {
    let file = std::fs::File::create(path)?;
    write_triples(matrix, file)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let m = CooMatrix::new(
            4,
            3,
            vec![
                Rating::new(0, 2, 4.5),
                Rating::new(3, 0, 1.0),
                Rating::new(1, 1, 3.25),
            ],
        )
        .unwrap();
        let mut buf = Vec::new();
        write_triples(&m, &mut buf).unwrap();
        let back = read_triples(&buf[..]).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# header\n\n% matrix-market-ish\n0 0 5\n1 2 3.5\n";
        let m = read_triples(text.as_bytes()).unwrap();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = "0 0 5\nnot a line\n";
        let err = read_triples(text.as_bytes()).unwrap_err();
        match err {
            SparseError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn missing_fields_error() {
        assert!(read_triples("0 1\n".as_bytes()).is_err());
        assert!(read_triples("0\n".as_bytes()).is_err());
    }

    #[test]
    fn empty_input_errors() {
        assert!(read_triples("".as_bytes()).is_err());
        assert!(read_triples("# only comments\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_nonfinite_ratings_and_overflowing_indices() {
        assert!(read_triples("0 0 nan\n".as_bytes()).is_err());
        assert!(read_triples("0 0 inf\n".as_bytes()).is_err());
        // u32::MAX as an index would overflow the max+1 dimension.
        let huge = format!("{} 0 1.0\n", u32::MAX);
        assert!(read_triples(huge.as_bytes()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("hcc_sparse_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("triples.txt");
        let m = CooMatrix::new(2, 2, vec![Rating::new(0, 1, 2.0), Rating::new(1, 0, 3.0)]).unwrap();
        write_triples_file(&m, &path).unwrap();
        let back = read_triples_file(&path).unwrap();
        assert_eq!(back, m);
        std::fs::remove_file(&path).ok();
    }
}

// ---------------------------------------------------------------------------
// Matrix Market
// ---------------------------------------------------------------------------

/// Reads a MatrixMarket `coordinate real general` file (the format most
/// published rating datasets ship in). Indices in the file are 1-based.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<CooMatrix, SparseError> {
    let mut reader = BufReader::new(reader);
    let mut line = String::new();
    let mut lineno = 0usize;

    // Header line.
    lineno += 1;
    if reader.read_line(&mut line)? == 0 {
        return Err(SparseError::Parse {
            line: lineno,
            message: "empty file".into(),
        });
    }
    let header = line.trim().to_ascii_lowercase();
    if !header.starts_with("%%matrixmarket matrix coordinate") {
        return Err(SparseError::Parse {
            line: lineno,
            message: "not a MatrixMarket coordinate header".into(),
        });
    }
    if header.contains("complex") || header.contains("hermitian") {
        return Err(SparseError::Parse {
            line: lineno,
            message: "complex matrices are not supported".into(),
        });
    }
    let pattern = header.contains("pattern");
    let symmetric = header.contains("symmetric") || header.contains("skew-symmetric");

    // Size line (skipping % comments).
    let (rows, cols, nnz) = loop {
        line.clear();
        lineno += 1;
        if reader.read_line(&mut line)? == 0 {
            return Err(SparseError::Parse {
                line: lineno,
                message: "missing size line".into(),
            });
        }
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse = |tok: Option<&str>, what: &str| -> Result<u64, SparseError> {
            tok.ok_or_else(|| SparseError::Parse {
                line: lineno,
                message: format!("missing {what}"),
            })?
            .parse()
            .map_err(|_| SparseError::Parse {
                line: lineno,
                message: format!("bad {what}"),
            })
        };
        let to_u32 = |v: u64, what: &str| -> Result<u32, SparseError> {
            u32::try_from(v).map_err(|_| SparseError::Parse {
                line: lineno,
                message: format!("{what} exceeds u32"),
            })
        };
        break (
            to_u32(parse(parts.next(), "rows")?, "rows")?,
            to_u32(parse(parts.next(), "cols")?, "cols")?,
            parse(parts.next(), "nnz")? as usize,
        );
    };

    // Cap the pre-allocation: a corrupt size line declaring an absurd nnz
    // must not reserve gigabytes before a single entry is read.
    let declared = if symmetric {
        nnz.saturating_mul(2)
    } else {
        nnz
    };
    let mut entries = Vec::with_capacity(declared.min(1 << 22));
    while entries.len() < if symmetric { usize::MAX } else { nnz } {
        line.clear();
        lineno += 1;
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse_err = |msg: &str| SparseError::Parse {
            line: lineno,
            message: msg.to_string(),
        };
        let u: u32 = parts
            .next()
            .ok_or_else(|| parse_err("missing row"))?
            .parse()
            .map_err(|_| parse_err("bad row"))?;
        let i: u32 = parts
            .next()
            .ok_or_else(|| parse_err("missing col"))?
            .parse()
            .map_err(|_| parse_err("bad col"))?;
        let r: f32 = if pattern {
            1.0
        } else {
            parts
                .next()
                .ok_or_else(|| parse_err("missing value"))?
                .parse()
                .map_err(|_| parse_err("bad value"))?
        };
        if u == 0 || i == 0 {
            return Err(parse_err("MatrixMarket indices are 1-based"));
        }
        if !r.is_finite() {
            return Err(parse_err("non-finite value"));
        }
        entries.push(Rating::new(u - 1, i - 1, r));
        if symmetric && u != i {
            entries.push(Rating::new(i - 1, u - 1, r));
        }
    }
    CooMatrix::new(rows, cols, entries)
}

/// Writes a MatrixMarket `coordinate real general` file (1-based indices).
pub fn write_matrix_market<W: Write>(matrix: &CooMatrix, writer: W) -> Result<(), SparseError> {
    let mut out = BufWriter::new(writer);
    writeln!(out, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(out, "% written by hcc-sparse")?;
    writeln!(out, "{} {} {}", matrix.rows(), matrix.cols(), matrix.nnz())?;
    for e in matrix.entries() {
        writeln!(out, "{} {} {}", e.u + 1, e.i + 1, e.r)?;
    }
    out.flush()?;
    Ok(())
}

#[cfg(test)]
mod mm_tests {
    use super::*;

    #[test]
    fn matrix_market_roundtrip() {
        let m = CooMatrix::new(
            3,
            4,
            vec![
                Rating::new(0, 3, 2.5),
                Rating::new(2, 0, 1.0),
                Rating::new(1, 1, 4.0),
            ],
        )
        .unwrap();
        let mut buf = Vec::new();
        write_matrix_market(&m, &mut buf).unwrap();
        let back = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn reads_pattern_and_symmetric_variants() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 3\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        // (2,1) mirrors to (1,2); diagonal (3,3) does not duplicate.
        assert_eq!(m.nnz(), 3);
        assert!(m.entries().iter().all(|e| e.r == 1.0));
        assert!(m.entries().iter().any(|e| e.u == 0 && e.i == 1));
    }

    #[test]
    fn rejects_bad_headers_and_indices() {
        assert!(read_matrix_market("not a header\n1 1 0\n".as_bytes()).is_err());
        assert!(read_matrix_market(
            "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 2 3\n".as_bytes()
        )
        .is_err());
        let zero_based = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 5\n";
        assert!(read_matrix_market(zero_based.as_bytes()).is_err());
    }

    #[test]
    fn rejects_oversized_dims_and_nonfinite_values() {
        // rows > u32::MAX used to truncate silently; now a typed error.
        let big = format!(
            "%%MatrixMarket matrix coordinate real general\n{} 2 1\n1 1 5\n",
            u64::from(u32::MAX) + 1
        );
        assert!(read_matrix_market(big.as_bytes()).is_err());
        let nan = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 nan\n";
        assert!(read_matrix_market(nan.as_bytes()).is_err());
    }

    #[test]
    fn absurd_declared_nnz_does_not_preallocate() {
        // Size line claims 10^15 entries but supplies one; the reader must
        // not reserve that much and the dimension check still applies.
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1000000000000000\n1 1 5\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn skips_comments_before_size_line() {
        let text = "%%MatrixMarket matrix coordinate real general\n% a comment\n\n2 2 1\n1 2 3.5\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.entries()[0], Rating::new(0, 1, 3.5));
    }
}
