//! Synthetic dataset generation.
//!
//! The paper evaluates on Netflix, Yahoo! Music R1/R1*/R2 and MovieLens-20m,
//! none of which are redistributable. We generate datasets from a *planted
//! low-rank model*: draw ground-truth factors `P*` (m×k0) and `Q*` (k0×n),
//! sample observed cells with Zipf-skewed user and item popularity (real
//! rating data is heavily skewed), and set
//! `r_ui = clamp(p*_u · q*_i + noise, scale)`.
//!
//! Because ratings come from a genuinely low-rank signal, SGD-based MF must
//! converge on them — which is exactly the property the convergence
//! experiments (Fig. 7) need — while the Zipf skew reproduces the uneven row
//! weights that stress the grid partitioner.

use crate::coo::{CooMatrix, Rating};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Configuration for the synthetic generator.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Users (rows of `R`).
    pub rows: u32,
    /// Items (columns of `R`).
    pub cols: u32,
    /// Observed entries to sample.
    pub nnz: usize,
    /// Rank of the planted factors.
    pub planted_rank: usize,
    /// Zipf exponent for user popularity (0 = uniform).
    pub user_skew: f64,
    /// Zipf exponent for item popularity (0 = uniform).
    pub item_skew: f64,
    /// Standard deviation of additive observation noise.
    pub noise: f32,
    /// Ratings are clamped to `[scale_min, scale_max]`.
    pub scale_min: f32,
    /// See `scale_min`.
    pub scale_max: f32,
    /// RNG seed; everything downstream is deterministic in it.
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            rows: 1_000,
            cols: 500,
            nnz: 20_000,
            planted_rank: 8,
            user_skew: 1.0,
            item_skew: 1.0,
            noise: 0.1,
            scale_min: 1.0,
            scale_max: 5.0,
            seed: 0x5eed,
        }
    }
}

/// A generated dataset: the rating matrix plus the planted ground truth
/// (useful for oracle evaluations in tests).
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// The observed rating matrix.
    pub matrix: CooMatrix,
    /// Planted user factors, row-major `rows × planted_rank`.
    pub true_p: Vec<f32>,
    /// Planted item factors, row-major `cols × planted_rank`.
    pub true_q: Vec<f32>,
    /// The configuration that produced this dataset.
    pub config: GenConfig,
}

impl SyntheticDataset {
    /// Generates a dataset from `config`. Deterministic in `config.seed`.
    ///
    /// Duplicate `(u, i)` draws are rejected via a hash of seen pairs, so the
    /// result has exactly `min(nnz, feasible)` distinct cells; for the sparse
    /// regimes used here rejection is cheap.
    pub fn generate(config: GenConfig) -> SyntheticDataset {
        assert!(
            config.rows > 0 && config.cols > 0,
            "dimensions must be non-zero"
        );
        assert!(config.planted_rank > 0, "planted rank must be non-zero");
        assert!(
            config.scale_min <= config.scale_max,
            "scale_min must not exceed scale_max"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let k = config.planted_rank;

        // Planted factors scaled so dot products land mid-scale on average:
        // E[p·q] ≈ k·mean², choose mean = sqrt(mid/k).
        let mid = 0.5 * (config.scale_min + config.scale_max);
        let amp = (mid.max(0.25) / k as f32).sqrt();
        let mut true_p = vec![0f32; config.rows as usize * k];
        let mut true_q = vec![0f32; config.cols as usize * k];
        for v in true_p.iter_mut() {
            *v = amp * (0.5 + rng.random::<f32>());
        }
        for v in true_q.iter_mut() {
            *v = amp * (0.5 + rng.random::<f32>());
        }

        let user_sampler = ZipfSampler::new(config.rows as usize, config.user_skew);
        let item_sampler = ZipfSampler::new(config.cols as usize, config.item_skew);

        let capacity = config.rows as u64 * config.cols as u64;
        let want = (config.nnz as u64).min(capacity) as usize;
        let mut seen = std::collections::HashSet::with_capacity(want * 2);
        let mut entries = Vec::with_capacity(want);
        // Rejection sampling on distinct cells. If the target density is high
        // the rejection rate climbs, so cap attempts and backfill by scanning.
        let mut attempts = 0u64;
        let max_attempts = (want as u64).saturating_mul(20).max(1024);
        while entries.len() < want && attempts < max_attempts {
            attempts += 1;
            let u = user_sampler.sample(&mut rng) as u32;
            let i = item_sampler.sample(&mut rng) as u32;
            let key = (u as u64) << 32 | i as u64;
            if !seen.insert(key) {
                continue;
            }
            entries.push(make_rating(u, i, &true_p, &true_q, k, &config, &mut rng));
        }
        if entries.len() < want {
            // Dense regime: fill remaining cells deterministically.
            'fill: for u in 0..config.rows {
                for i in 0..config.cols {
                    if entries.len() >= want {
                        break 'fill;
                    }
                    let key = (u as u64) << 32 | i as u64;
                    if seen.insert(key) {
                        entries.push(make_rating(u, i, &true_p, &true_q, k, &config, &mut rng));
                    }
                }
            }
        }

        let matrix = CooMatrix::from_parts_unchecked(config.rows, config.cols, entries);
        SyntheticDataset {
            matrix,
            true_p,
            true_q,
            config,
        }
    }

    /// The planted prediction for cell `(u, i)` (noise-free).
    pub fn true_rating(&self, u: u32, i: u32) -> f32 {
        let k = self.config.planted_rank;
        let p = &self.true_p[u as usize * k..(u as usize + 1) * k];
        let q = &self.true_q[i as usize * k..(i as usize + 1) * k];
        let dot: f32 = p.iter().zip(q).map(|(a, b)| a * b).sum();
        dot.clamp(self.config.scale_min, self.config.scale_max)
    }
}

fn make_rating<R: Rng>(
    u: u32,
    i: u32,
    true_p: &[f32],
    true_q: &[f32],
    k: usize,
    config: &GenConfig,
    rng: &mut R,
) -> Rating {
    let p = &true_p[u as usize * k..(u as usize + 1) * k];
    let q = &true_q[i as usize * k..(i as usize + 1) * k];
    let dot: f32 = p.iter().zip(q).map(|(a, b)| a * b).sum();
    let noise = if config.noise > 0.0 {
        // Box–Muller: two uniforms → one standard normal.
        let u1: f32 = rng.random::<f32>().max(f32::MIN_POSITIVE);
        let u2: f32 = rng.random();
        (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos() * config.noise
    } else {
        0.0
    };
    let r = (dot + noise).clamp(config.scale_min, config.scale_max);
    Rating::new(u, i, r)
}

/// Zipf-distributed index sampler over `0..n` via inverse-CDF binary search.
///
/// `P(rank j) ∝ 1/(j+1)^s`. `s = 0` degenerates to uniform. The CDF table is
/// `n` doubles, fine for the laptop-scale dataset sizes used in real training
/// (the simulator never samples entries at paper scale).
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `0..n` with exponent `s >= 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> ZipfSampler {
        assert!(n > 0, "sampler domain must be non-empty");
        assert!(
            s >= 0.0 && s.is_finite(),
            "zipf exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for j in 0..n {
            acc += 1.0 / ((j + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in cdf.iter_mut() {
            *v /= total;
        }
        // Guard against floating-point never reaching 1.0.
        *cdf.last_mut().unwrap() = 1.0;
        ZipfSampler { cdf }
    }

    /// Draws one index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let x: f64 = rng.random();
        self.cdf.partition_point(|&c| c < x).min(self.cdf.len() - 1)
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false (the constructor rejects empty domains); provided for
    /// clippy's `len_without_is_empty` convention.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticDataset::generate(GenConfig::default());
        let b = SyntheticDataset::generate(GenConfig::default());
        assert_eq!(a.matrix, b.matrix);
        assert_eq!(a.true_p, b.true_p);
    }

    #[test]
    fn seed_changes_output() {
        let a = SyntheticDataset::generate(GenConfig::default());
        let b = SyntheticDataset::generate(GenConfig {
            seed: 99,
            ..GenConfig::default()
        });
        assert_ne!(a.matrix, b.matrix);
    }

    #[test]
    fn nnz_and_bounds_respected() {
        let cfg = GenConfig {
            rows: 100,
            cols: 50,
            nnz: 2_000,
            ..GenConfig::default()
        };
        let ds = SyntheticDataset::generate(cfg.clone());
        assert_eq!(ds.matrix.nnz(), 2_000);
        assert_eq!(ds.matrix.rows(), 100);
        assert_eq!(ds.matrix.cols(), 50);
        for e in ds.matrix.entries() {
            assert!(e.r >= cfg.scale_min && e.r <= cfg.scale_max);
        }
    }

    #[test]
    fn no_duplicate_cells() {
        let ds = SyntheticDataset::generate(GenConfig {
            rows: 50,
            cols: 40,
            nnz: 1_500,
            ..GenConfig::default()
        });
        let mut keys: Vec<u64> = ds
            .matrix
            .entries()
            .iter()
            .map(|e| (e.u as u64) << 32 | e.i as u64)
            .collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), ds.matrix.nnz());
    }

    #[test]
    fn dense_request_fills_every_cell() {
        let ds = SyntheticDataset::generate(GenConfig {
            rows: 10,
            cols: 10,
            nnz: 100,
            ..GenConfig::default()
        });
        assert_eq!(ds.matrix.nnz(), 100);
    }

    #[test]
    fn over_dense_request_caps_at_capacity() {
        let ds = SyntheticDataset::generate(GenConfig {
            rows: 5,
            cols: 5,
            nnz: 1_000,
            ..GenConfig::default()
        });
        assert_eq!(ds.matrix.nnz(), 25);
    }

    #[test]
    fn zipf_skews_toward_low_indices() {
        let sampler = ZipfSampler::new(1_000, 1.2);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut low = 0usize;
        const DRAWS: usize = 10_000;
        for _ in 0..DRAWS {
            if sampler.sample(&mut rng) < 10 {
                low += 1;
            }
        }
        // With s = 1.2 the top-10 mass is large; uniform would give ~1%.
        assert!(low > DRAWS / 10, "low-index draws: {low}");
    }

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        let sampler = ZipfSampler::new(10, 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*max < 2 * *min, "counts {counts:?}");
    }

    #[test]
    fn zipf_sample_always_in_domain() {
        let sampler = ZipfSampler::new(3, 2.0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..1_000 {
            assert!(sampler.sample(&mut rng) < 3);
        }
    }

    #[test]
    fn true_rating_is_clamped() {
        let ds = SyntheticDataset::generate(GenConfig::default());
        let r = ds.true_rating(0, 0);
        assert!(r >= ds.config.scale_min && r <= ds.config.scale_max);
    }

    #[test]
    fn noise_free_ratings_match_planted_model() {
        let ds = SyntheticDataset::generate(GenConfig {
            noise: 0.0,
            rows: 30,
            cols: 30,
            nnz: 200,
            ..GenConfig::default()
        });
        for e in ds.matrix.entries().iter().take(50) {
            let expect = ds.true_rating(e.u, e.i);
            assert!(
                (e.r - expect).abs() < 1e-6,
                "({},{}) {} vs {}",
                e.u,
                e.i,
                e.r,
                expect
            );
        }
    }
}
