//! Deterministic train/test splitting.

use crate::coo::CooMatrix;
use crate::error::SparseError;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Splits a rating matrix into train and test sets.
///
/// `test_fraction` of the entries (rounded down, at least leaving one train
/// entry when possible) go to the test set. The split is deterministic in
/// `seed`. Both outputs keep the original dimensions so factor matrices are
/// shared.
pub fn train_test_split(
    matrix: &CooMatrix,
    test_fraction: f64,
    seed: u64,
) -> Result<(CooMatrix, CooMatrix), SparseError> {
    if !(test_fraction > 0.0 && test_fraction < 1.0) {
        return Err(SparseError::BadFraction(test_fraction));
    }
    let mut entries = matrix.entries().to_vec();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    entries.shuffle(&mut rng);
    let mut test_len = (entries.len() as f64 * test_fraction) as usize;
    if test_len >= entries.len() && !entries.is_empty() {
        test_len = entries.len() - 1;
    }
    let train_entries = entries.split_off(test_len);
    let test_entries = entries;
    Ok((
        CooMatrix::new(matrix.rows(), matrix.cols(), train_entries)?,
        CooMatrix::new(matrix.rows(), matrix.cols(), test_entries)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Rating;

    fn matrix(nnz: usize) -> CooMatrix {
        let entries = (0..nnz)
            .map(|j| Rating::new((j % 10) as u32, (j % 7) as u32, 1.0 + (j % 5) as f32))
            .collect();
        CooMatrix::new(10, 7, entries).unwrap()
    }

    #[test]
    fn split_sizes_add_up() {
        let m = matrix(100);
        let (train, test) = train_test_split(&m, 0.2, 1).unwrap();
        assert_eq!(train.nnz() + test.nnz(), 100);
        assert_eq!(test.nnz(), 20);
        assert_eq!(train.rows(), 10);
        assert_eq!(test.cols(), 7);
    }

    #[test]
    fn split_is_deterministic() {
        let m = matrix(50);
        let (a, _) = train_test_split(&m, 0.3, 9).unwrap();
        let (b, _) = train_test_split(&m, 0.3, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let m = matrix(50);
        let (a, _) = train_test_split(&m, 0.3, 1).unwrap();
        let (b, _) = train_test_split(&m, 0.3, 2).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn bad_fractions_rejected() {
        let m = matrix(10);
        assert!(train_test_split(&m, 0.0, 1).is_err());
        assert!(train_test_split(&m, 1.0, 1).is_err());
        assert!(train_test_split(&m, -0.5, 1).is_err());
        assert!(train_test_split(&m, f64::NAN, 1).is_err());
    }

    #[test]
    fn no_entry_lost_or_duplicated() {
        let m = matrix(37);
        let (train, test) = train_test_split(&m, 0.25, 4).unwrap();
        let mut all: Vec<_> = train
            .entries()
            .iter()
            .chain(test.entries())
            .map(|e| (e.u, e.i, e.r.to_bits()))
            .collect();
        all.sort_unstable();
        let mut orig: Vec<_> = m
            .entries()
            .iter()
            .map(|e| (e.u, e.i, e.r.to_bits()))
            .collect();
        orig.sort_unstable();
        assert_eq!(all, orig);
    }
}
