//! Sparse rating-matrix substrate for HCC-MF.
//!
//! This crate provides the data structures that every other layer of the
//! reproduction is built on:
//!
//! * [`CooMatrix`] — the rating matrix `R` in coordinate form, the working
//!   representation for SGD-based matrix factorization (one `(user, item,
//!   rating)` triple per observed entry).
//! * [`CsrMatrix`] — compressed sparse row form, used where per-row access is
//!   needed (grid construction, per-row statistics, test-set evaluation).
//! * [`grid`] — the row/column grids the HCC-MF server uses to partition data
//!   among workers (§3.3 of the paper), and the 2-D block grid FPSGD uses.
//! * [`gen`] — synthetic dataset generators (planted low-rank model with
//!   Zipf-skewed user/item popularity), replacing the license-gated Netflix
//!   and Yahoo! Music datasets.
//! * [`profiles`] — named shape profiles (`m`, `n`, `nnz`, rating scale,
//!   regularization) of the five datasets used in the paper's evaluation.
//! * [`split`] — deterministic train/test splitting.
//! * [`io`] — plain-text triple I/O compatible with the common
//!   `user item rating` format.
//! * [`tile`] — regrouping a shard into L2-sized `u_block × i_block` tiles
//!   for the locality-aware Hogwild scheduler.

//!
//! ```
//! use hcc_sparse::{GenConfig, SyntheticDataset, MatrixStats};
//!
//! let ds = SyntheticDataset::generate(GenConfig {
//!     rows: 100, cols: 50, nnz: 1_000, ..GenConfig::default()
//! });
//! let stats = MatrixStats::compute(&ds.matrix);
//! assert_eq!(stats.nnz, 1_000);
//! assert!(stats.row_gini > 0.0); // Zipf-skewed popularity
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod coo;
pub mod csc;
pub mod csr;
pub mod error;
pub mod gen;
pub mod grid;
pub mod io;
pub mod profiles;
pub mod split;
pub mod stats;
pub mod tile;

pub use coo::{CooMatrix, Rating};
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use error::SparseError;
pub use gen::{GenConfig, SyntheticDataset};
pub use grid::{Axis, BlockGrid, GridPartition};
pub use profiles::DatasetProfile;
pub use split::train_test_split;
pub use stats::MatrixStats;
pub use tile::TileGrid;
