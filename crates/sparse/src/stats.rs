//! Dataset statistics.
//!
//! The communication/computation trade-off in HCC-MF is governed by a
//! handful of shape statistics (§3.4's `nnz/(m+n)` rule, the popularity
//! skew that stresses grid balancing). This module computes them so
//! examples and benches can characterize inputs, and so users can predict
//! — before training — whether a dataset is in the framework's sweet spot.

use crate::coo::CooMatrix;

/// Summary statistics of a rating matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixStats {
    /// Rows (users).
    pub rows: u32,
    /// Columns (items).
    pub cols: u32,
    /// Observed entries.
    pub nnz: usize,
    /// `nnz / (m·n)`.
    pub density: f64,
    /// `m / n`.
    pub aspect_ratio: f64,
    /// `nnz / (m + n)` — the paper's §3.4 indicator; below ~10³,
    /// communication and computation are the same order of magnitude.
    pub nnz_per_dim: f64,
    /// `nnz / min(m, n)` — the same indicator *after* the Q-only
    /// optimization (only the short dimension still travels); this is what
    /// separates the datasets HCC-MF accelerates well (Netflix ≈ 5.6k,
    /// R2 ≈ 2.8k) from the ones it can't (R1 ≈ 105, MovieLens ≈ 152, §4.6).
    pub nnz_per_min_dim: f64,
    /// Mean rating.
    pub mean_rating: f64,
    /// Rating standard deviation.
    pub std_rating: f64,
    /// Gini coefficient of per-row entry counts (0 = uniform, →1 = skewed).
    pub row_gini: f64,
    /// Gini coefficient of per-column entry counts.
    pub col_gini: f64,
    /// Maximum entries in any single row.
    pub max_row_count: u32,
    /// Maximum entries in any single column.
    pub max_col_count: u32,
    /// Rows with no entries.
    pub empty_rows: u32,
    /// Columns with no entries.
    pub empty_cols: u32,
}

impl MatrixStats {
    /// Computes all statistics in two passes over the entries.
    pub fn compute(matrix: &CooMatrix) -> MatrixStats {
        let rows = matrix.rows();
        let cols = matrix.cols();
        let nnz = matrix.nnz();
        let row_counts = matrix.row_counts();
        let col_counts = matrix.col_counts();

        let (mean, std) = if nnz == 0 {
            (0.0, 0.0)
        } else {
            let mean: f64 = matrix.entries().iter().map(|e| e.r as f64).sum::<f64>() / nnz as f64;
            let var: f64 = matrix
                .entries()
                .iter()
                .map(|e| {
                    let d = e.r as f64 - mean;
                    d * d
                })
                .sum::<f64>()
                / nnz as f64;
            (mean, var.sqrt())
        };

        MatrixStats {
            rows,
            cols,
            nnz,
            density: matrix.density(),
            aspect_ratio: rows as f64 / cols as f64,
            nnz_per_dim: nnz as f64 / (rows as f64 + cols as f64),
            nnz_per_min_dim: nnz as f64 / rows.min(cols) as f64,
            mean_rating: mean,
            std_rating: std,
            row_gini: gini(&row_counts),
            col_gini: gini(&col_counts),
            max_row_count: row_counts.iter().copied().max().unwrap_or(0),
            max_col_count: col_counts.iter().copied().max().unwrap_or(0),
            empty_rows: row_counts.iter().filter(|&&c| c == 0).count() as u32,
            empty_cols: col_counts.iter().filter(|&&c| c == 0).count() as u32,
        }
    }

    /// The §4.6 verdict: is collaborative acceleration likely to pay off?
    /// True when the post-Q-only communication indicator `nnz/min(m,n)`
    /// clears 10³ — which is exactly the Netflix/R2 vs R1/MovieLens split
    /// of Table 4.
    pub fn collaboration_friendly(&self) -> bool {
        self.nnz_per_min_dim >= 1e3
    }
}

/// Gini coefficient of a non-negative count vector (0 for uniform or empty).
pub fn gini(counts: &[u32]) -> f64 {
    if counts.is_empty() {
        return 0.0;
    }
    let total: u64 = counts.iter().map(|&c| c as u64).sum();
    if total == 0 {
        return 0.0;
    }
    let mut sorted: Vec<u64> = counts.iter().map(|&c| c as u64).collect();
    sorted.sort_unstable();
    let n = sorted.len() as f64;
    // G = (2·Σ i·x_i) / (n·Σ x_i) − (n+1)/n with 1-based ranks on sorted x.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
        .sum();
    (2.0 * weighted) / (n * total as f64) - (n + 1.0) / n
}

/// Quantiles of per-row entry counts: `(p50, p90, p99, max)`.
pub fn row_count_quantiles(matrix: &CooMatrix) -> (u32, u32, u32, u32) {
    let mut counts = matrix.row_counts();
    counts.sort_unstable();
    let q = |p: f64| -> u32 {
        if counts.is_empty() {
            0
        } else {
            counts[((counts.len() - 1) as f64 * p) as usize]
        }
    };
    (q(0.5), q(0.9), q(0.99), counts.last().copied().unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Rating;
    use crate::gen::{GenConfig, SyntheticDataset};
    use crate::profiles::DatasetProfile;

    #[test]
    fn gini_uniform_is_zero() {
        assert!(gini(&[5, 5, 5, 5]).abs() < 1e-12);
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0, 0]), 0.0);
    }

    #[test]
    fn gini_concentrated_approaches_one() {
        let mut counts = vec![0u32; 100];
        counts[0] = 1_000;
        let g = gini(&counts);
        assert!(g > 0.95, "gini {g}");
    }

    #[test]
    fn gini_is_scale_invariant() {
        let a = gini(&[1, 2, 3, 4]);
        let b = gini(&[10, 20, 30, 40]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn stats_on_known_matrix() {
        let m = CooMatrix::new(
            3,
            2,
            vec![
                Rating::new(0, 0, 2.0),
                Rating::new(0, 1, 4.0),
                Rating::new(1, 0, 3.0),
            ],
        )
        .unwrap();
        let s = MatrixStats::compute(&m);
        assert_eq!(s.nnz, 3);
        assert!((s.mean_rating - 3.0).abs() < 1e-12);
        assert!((s.std_rating - (2.0f64 / 3.0).sqrt()).abs() < 1e-9);
        assert_eq!(s.max_row_count, 2);
        assert_eq!(s.empty_rows, 1);
        assert_eq!(s.empty_cols, 0);
        assert!((s.aspect_ratio - 1.5).abs() < 1e-12);
    }

    #[test]
    fn zipf_generated_data_is_skewed() {
        let ds = SyntheticDataset::generate(GenConfig {
            rows: 500,
            cols: 300,
            nnz: 10_000,
            user_skew: 1.2,
            item_skew: 1.2,
            ..GenConfig::default()
        });
        let s = MatrixStats::compute(&ds.matrix);
        assert!(s.row_gini > 0.3, "row gini {}", s.row_gini);
        let uniform = SyntheticDataset::generate(GenConfig {
            rows: 500,
            cols: 300,
            nnz: 10_000,
            user_skew: 0.0,
            item_skew: 0.0,
            ..GenConfig::default()
        });
        let u = MatrixStats::compute(&uniform.matrix);
        assert!(s.row_gini > u.row_gini, "{} !> {}", s.row_gini, u.row_gini);
    }

    #[test]
    fn collaboration_verdict_matches_table4_split() {
        // The verdict is a shape property: Netflix and R2 friendly, R1 and
        // MovieLens not — exactly Table 4's high/low utilization split.
        let per_min = |p: &DatasetProfile| p.nnz as f64 / p.m.min(p.n) as f64;
        assert!(per_min(&DatasetProfile::netflix()) >= 1e3);
        assert!(per_min(&DatasetProfile::yahoo_r2()) >= 1e3);
        assert!(per_min(&DatasetProfile::yahoo_r1()) < 1e3);
        assert!(per_min(&DatasetProfile::movielens_20m()) < 1e3);
        // And through MatrixStats on generated data (shape is preserved by
        // the scaled generator).
        let ml = DatasetProfile::movielens_20m();
        let ds = SyntheticDataset::generate(ml.scaled_gen_config(20_000.0, 1));
        let s = MatrixStats::compute(&ds.matrix);
        assert!(!s.collaboration_friendly());
    }

    #[test]
    fn quantiles_ordered() {
        let ds = SyntheticDataset::generate(GenConfig {
            rows: 200,
            cols: 100,
            nnz: 5_000,
            ..GenConfig::default()
        });
        let (p50, p90, p99, max) = row_count_quantiles(&ds.matrix);
        assert!(p50 <= p90 && p90 <= p99 && p99 <= max);
        assert!(max > 0);
    }

    #[test]
    fn empty_matrix_stats_are_zeroed() {
        let m = CooMatrix::new(5, 5, vec![]).unwrap();
        let s = MatrixStats::compute(&m);
        assert_eq!(s.mean_rating, 0.0);
        assert_eq!(s.std_rating, 0.0);
        assert_eq!(s.row_gini, 0.0);
        assert_eq!(s.empty_rows, 5);
    }
}
