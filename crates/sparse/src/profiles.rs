//! Named dataset shape profiles.
//!
//! Table 3 of the paper records, for each evaluation dataset, the dimensions
//! `m × n`, entry count `nnz`, regularization `λ1 = λ2`, and (implicitly) the
//! rating scale. These shapes drive both the simulator (where only sizes and
//! bandwidth matter) and scaled-down real training runs.

use crate::gen::GenConfig;
use serde::{Deserialize, Serialize};

/// Shape and training hyper-parameters of one evaluation dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetProfile {
    /// Human-readable name as used in the paper.
    pub name: &'static str,
    /// Users.
    pub m: u64,
    /// Items.
    pub n: u64,
    /// Observed ratings.
    pub nnz: u64,
    /// L2 regularization (λ1 = λ2 in Table 3).
    pub lambda: f32,
    /// SGD learning rate γ (Table 3 caption: 0.005 for all datasets).
    pub learning_rate: f32,
    /// Rating scale lower bound.
    pub scale_min: f32,
    /// Rating scale upper bound.
    pub scale_max: f32,
}

impl DatasetProfile {
    /// Netflix Prize: 480,190 × 17,771, ~99.07 M ratings, λ = 0.01.
    pub fn netflix() -> Self {
        DatasetProfile {
            name: "Netflix",
            m: 480_190,
            n: 17_771,
            nnz: 99_072_112,
            lambda: 0.01,
            learning_rate: 0.005,
            scale_min: 1.0,
            scale_max: 5.0,
        }
    }

    /// Yahoo! Music R1: 1,948,883 × 1,101,750, ~115.58 M ratings, λ = 1.
    pub fn yahoo_r1() -> Self {
        DatasetProfile {
            name: "Yahoo! Music R1",
            m: 1_948_883,
            n: 1_101_750,
            nnz: 115_579_437,
            lambda: 1.0,
            learning_rate: 0.005,
            scale_min: 0.0,
            scale_max: 100.0,
        }
    }

    /// R1*: R1 densified with uniform additions to ~200 M ratings (used by
    /// the paper to stress the data-partition strategies).
    pub fn r1_star() -> Self {
        DatasetProfile {
            name: "R1*",
            m: 1_948_883,
            n: 1_101_750,
            nnz: 199_999_997,
            lambda: 1.0,
            learning_rate: 0.005,
            scale_min: 0.0,
            scale_max: 100.0,
        }
    }

    /// Yahoo! Music R2: 1,000,000 × 136,736, ~383.84 M ratings, λ = 0.01.
    /// (R2 is the song-rating set on a 1–5 scale — Fig. 7(c)'s RMSE range.)
    pub fn yahoo_r2() -> Self {
        DatasetProfile {
            name: "Yahoo! Music R2",
            m: 1_000_000,
            n: 136_736,
            nnz: 383_838_609,
            lambda: 0.01,
            learning_rate: 0.005,
            scale_min: 1.0,
            scale_max: 5.0,
        }
    }

    /// MovieLens-20m: 138,494 × 131,263, ~20 M ratings, λ = 0.01. The
    /// paper's "limitation" dataset: m ≈ n, so communication cannot shrink.
    pub fn movielens_20m() -> Self {
        DatasetProfile {
            name: "MovieLens-20m",
            m: 138_494,
            n: 131_263,
            nnz: 20_000_260,
            lambda: 0.01,
            learning_rate: 0.005,
            scale_min: 0.5,
            scale_max: 5.0,
        }
    }

    /// All five evaluation profiles, in Table-3 order.
    pub fn all() -> Vec<DatasetProfile> {
        vec![
            Self::netflix(),
            Self::yahoo_r1(),
            Self::r1_star(),
            Self::yahoo_r2(),
            Self::movielens_20m(),
        ]
    }

    /// `m + n`: the dimension sum governing communication volume.
    pub fn dim_sum(&self) -> u64 {
        self.m + self.n
    }

    /// `nnz / (m + n)`: the paper's rule of thumb — below ~10³ the
    /// communication and computation costs are the same order of magnitude.
    pub fn nnz_per_dim(&self) -> f64 {
        self.nnz as f64 / self.dim_sum() as f64
    }

    /// A generator config reproducing this dataset's *shape* scaled down by
    /// `factor` (e.g. 1000 → laptop scale). `nnz` scales by `factor`, the
    /// dimensions by `sqrt(factor)`, preserving density and aspect ratio.
    pub fn scaled_gen_config(&self, factor: f64, seed: u64) -> GenConfig {
        assert!(factor >= 1.0, "scale factor must be >= 1");
        let dim_scale = factor.sqrt();
        let rows = ((self.m as f64 / dim_scale).round() as u32).max(8);
        let cols = ((self.n as f64 / dim_scale).round() as u32).max(8);
        let nnz = ((self.nnz as f64 / factor).round() as usize).max(64);
        GenConfig {
            rows,
            cols,
            nnz: (nnz as u64).min(rows as u64 * cols as u64) as usize,
            planted_rank: 8,
            user_skew: 0.8,
            item_skew: 0.8,
            noise: 0.05 * (self.scale_max - self.scale_min),
            scale_min: self.scale_min,
            scale_max: self.scale_max,
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::SyntheticDataset;

    #[test]
    fn table3_shapes_are_encoded() {
        let n = DatasetProfile::netflix();
        assert_eq!(n.m, 480_190);
        assert_eq!(n.n, 17_771);
        assert_eq!(n.nnz, 99_072_112);
        assert_eq!(DatasetProfile::yahoo_r1().lambda, 1.0);
        assert_eq!(DatasetProfile::all().len(), 5);
    }

    #[test]
    fn movielens_is_near_square() {
        let ml = DatasetProfile::movielens_20m();
        let ratio = ml.m as f64 / ml.n as f64;
        assert!(ratio > 0.9 && ratio < 1.2, "ratio {ratio}");
        // The paper's limitation criterion: nnz/(m+n) < 1e3 for MovieLens...
        assert!(ml.nnz_per_dim() < 1e3);
        // ...but not for Netflix or R2.
        assert!(DatasetProfile::netflix().nnz_per_dim() > 1e2);
        assert!(DatasetProfile::yahoo_r2().nnz_per_dim() > 1e2);
    }

    #[test]
    fn scaled_config_preserves_aspect() {
        let p = DatasetProfile::netflix();
        let cfg = p.scaled_gen_config(10_000.0, 1);
        let orig_aspect = p.m as f64 / p.n as f64;
        let new_aspect = cfg.rows as f64 / cfg.cols as f64;
        assert!((orig_aspect / new_aspect - 1.0).abs() < 0.05);
        assert!(cfg.nnz as u64 <= cfg.rows as u64 * cfg.cols as u64);
    }

    #[test]
    fn scaled_config_generates() {
        let cfg = DatasetProfile::movielens_20m().scaled_gen_config(100_000.0, 2);
        let ds = SyntheticDataset::generate(cfg);
        assert!(ds.matrix.nnz() > 0);
    }
}
