//! Error type for sparse-matrix operations.

use std::fmt;

/// Errors produced while building or transforming sparse matrices.
#[derive(Debug, Clone, PartialEq)]
pub enum SparseError {
    /// An entry referenced a row at or beyond the declared row count.
    RowOutOfBounds { row: u32, rows: u32 },
    /// An entry referenced a column at or beyond the declared column count.
    ColOutOfBounds { col: u32, cols: u32 },
    /// A dimension was zero where a non-empty matrix is required.
    EmptyDimension { what: &'static str },
    /// A parse failure while reading a text triple file.
    Parse { line: usize, message: String },
    /// Underlying I/O failure (message carried, source dropped for `Clone`).
    Io(String),
    /// A requested split fraction was outside `(0, 1)`.
    BadFraction(f64),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::RowOutOfBounds { row, rows } => {
                write!(f, "row index {row} out of bounds for {rows} rows")
            }
            SparseError::ColOutOfBounds { col, cols } => {
                write!(f, "column index {col} out of bounds for {cols} columns")
            }
            SparseError::EmptyDimension { what } => write!(f, "{what} must be non-zero"),
            SparseError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            SparseError::Io(message) => write!(f, "io error: {message}"),
            SparseError::BadFraction(frac) => {
                write!(f, "split fraction {frac} must lie strictly between 0 and 1")
            }
        }
    }
}

impl std::error::Error for SparseError {}

impl From<std::io::Error> for SparseError {
    fn from(err: std::io::Error) -> Self {
        SparseError::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = SparseError::RowOutOfBounds { row: 7, rows: 5 };
        assert!(err.to_string().contains("7"));
        assert!(err.to_string().contains("5"));
        let err = SparseError::BadFraction(1.5);
        assert!(err.to_string().contains("1.5"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let err: SparseError = io.into();
        assert!(matches!(err, SparseError::Io(_)));
    }
}
