//! Coordinate-form sparse rating matrix.
//!
//! The SGD training loop streams over observed ratings, so coordinate form is
//! the working representation throughout HCC-MF. Entries are 12 bytes each
//! (`u32` row, `u32` column, `f32` rating), matching the compact layout used
//! by FPSGD and CuMF_SGD.

use crate::error::SparseError;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One observed rating: user `u` gave item `i` the value `r`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rating {
    /// Row (user) index.
    pub u: u32,
    /// Column (item) index.
    pub i: u32,
    /// Observed rating value.
    pub r: f32,
}

impl Rating {
    /// Convenience constructor.
    #[inline]
    pub fn new(u: u32, i: u32, r: f32) -> Self {
        Rating { u, i, r }
    }
}

/// Sparse rating matrix in coordinate (triple) form.
///
/// Invariants: every entry satisfies `u < rows` and `i < cols`. Duplicate
/// `(u, i)` pairs are permitted (SGD treats them as repeated observations),
/// though the generators never produce them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CooMatrix {
    rows: u32,
    cols: u32,
    entries: Vec<Rating>,
}

impl CooMatrix {
    /// Builds a matrix from triples, validating index bounds.
    pub fn new(rows: u32, cols: u32, entries: Vec<Rating>) -> Result<Self, SparseError> {
        if rows == 0 {
            return Err(SparseError::EmptyDimension { what: "rows" });
        }
        if cols == 0 {
            return Err(SparseError::EmptyDimension { what: "cols" });
        }
        for e in &entries {
            if e.u >= rows {
                return Err(SparseError::RowOutOfBounds { row: e.u, rows });
            }
            if e.i >= cols {
                return Err(SparseError::ColOutOfBounds { col: e.i, cols });
            }
        }
        Ok(CooMatrix {
            rows,
            cols,
            entries,
        })
    }

    /// Builds without bound checks. Caller must guarantee the invariants;
    /// used by generators that construct indices in-range by construction.
    pub(crate) fn from_parts_unchecked(rows: u32, cols: u32, entries: Vec<Rating>) -> Self {
        debug_assert!(entries.iter().all(|e| e.u < rows && e.i < cols));
        CooMatrix {
            rows,
            cols,
            entries,
        }
    }

    /// Number of rows (`m` in the paper: users).
    #[inline]
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of columns (`n` in the paper: items).
    #[inline]
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Number of observed entries (`nnz` in the paper).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Density `nnz / (m·n)`.
    pub fn density(&self) -> f64 {
        self.entries.len() as f64 / (self.rows as f64 * self.cols as f64)
    }

    /// Immutable view of the triples.
    #[inline]
    pub fn entries(&self) -> &[Rating] {
        &self.entries
    }

    /// Mutable view of the triples (indices must stay in-bounds).
    #[inline]
    pub fn entries_mut(&mut self) -> &mut [Rating] {
        &mut self.entries
    }

    /// Consumes the matrix, returning its triples.
    pub fn into_entries(self) -> Vec<Rating> {
        self.entries
    }

    /// Mean rating over all observed entries (0 if empty).
    pub fn mean_rating(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.entries.iter().map(|e| e.r as f64).sum();
        sum / self.entries.len() as f64
    }

    /// Shuffles the entry order in place (framework step ① preprocessing).
    pub fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.entries.shuffle(rng);
    }

    /// Sorts entries by row, then column. This is the "block sorting by row"
    /// the paper adds to CuMF_SGD's `grid_problem` to improve cache hit rate.
    pub fn sort_by_row(&mut self) {
        self.entries.sort_unstable_by_key(|e| (e.u, e.i));
    }

    /// Sorts entries by column, then row (for column-grid partitioning).
    pub fn sort_by_col(&mut self) {
        self.entries.sort_unstable_by_key(|e| (e.i, e.u));
    }

    /// Per-row entry counts; length `rows`.
    pub fn row_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.rows as usize];
        for e in &self.entries {
            counts[e.u as usize] += 1;
        }
        counts
    }

    /// Per-column entry counts; length `cols`.
    pub fn col_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.cols as usize];
        for e in &self.entries {
            counts[e.i as usize] += 1;
        }
        counts
    }

    /// Transposes the matrix: swaps rows/columns and every entry's indices.
    /// Used to switch between "transmit Q only" and "transmit P only" framing.
    pub fn transpose(mut self) -> CooMatrix {
        for e in &mut self.entries {
            std::mem::swap(&mut e.u, &mut e.i);
        }
        CooMatrix {
            rows: self.cols,
            cols: self.rows,
            entries: self.entries,
        }
    }

    /// Minimum and maximum observed rating, or `None` when empty.
    pub fn rating_range(&self) -> Option<(f32, f32)> {
        let mut it = self.entries.iter();
        let first = it.next()?.r;
        let mut lo = first;
        let mut hi = first;
        for e in it {
            if e.r < lo {
                lo = e.r;
            }
            if e.r > hi {
                hi = e.r;
            }
        }
        Some((lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sample() -> CooMatrix {
        CooMatrix::new(
            3,
            4,
            vec![
                Rating::new(0, 1, 5.0),
                Rating::new(2, 3, 1.0),
                Rating::new(1, 0, 3.0),
                Rating::new(0, 0, 4.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_bounds() {
        let err = CooMatrix::new(2, 2, vec![Rating::new(2, 0, 1.0)]).unwrap_err();
        assert_eq!(err, SparseError::RowOutOfBounds { row: 2, rows: 2 });
        let err = CooMatrix::new(2, 2, vec![Rating::new(0, 5, 1.0)]).unwrap_err();
        assert_eq!(err, SparseError::ColOutOfBounds { col: 5, cols: 2 });
        assert!(CooMatrix::new(0, 2, vec![]).is_err());
        assert!(CooMatrix::new(2, 0, vec![]).is_err());
    }

    #[test]
    fn basic_stats() {
        let m = sample();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.nnz(), 4);
        assert!((m.density() - 4.0 / 12.0).abs() < 1e-12);
        assert!((m.mean_rating() - 3.25).abs() < 1e-12);
        assert_eq!(m.rating_range(), Some((1.0, 5.0)));
    }

    #[test]
    fn empty_matrix_stats() {
        let m = CooMatrix::new(2, 2, vec![]).unwrap();
        assert_eq!(m.mean_rating(), 0.0);
        assert_eq!(m.rating_range(), None);
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn sort_by_row_orders_lexicographically() {
        let mut m = sample();
        m.sort_by_row();
        let keys: Vec<(u32, u32)> = m.entries().iter().map(|e| (e.u, e.i)).collect();
        assert_eq!(keys, vec![(0, 0), (0, 1), (1, 0), (2, 3)]);
    }

    #[test]
    fn sort_by_col_orders_by_column_first() {
        let mut m = sample();
        m.sort_by_col();
        let keys: Vec<(u32, u32)> = m.entries().iter().map(|e| (e.i, e.u)).collect();
        assert_eq!(keys, vec![(0, 0), (0, 1), (1, 0), (3, 2)]);
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let mut m = sample();
        let mut before: Vec<_> = m.entries().iter().map(|e| (e.u, e.i)).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        m.shuffle(&mut rng);
        let mut after: Vec<_> = m.entries().iter().map(|e| (e.u, e.i)).collect();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
    }

    #[test]
    fn counts_match_entries() {
        let m = sample();
        assert_eq!(m.row_counts(), vec![2, 1, 1]);
        assert_eq!(m.col_counts(), vec![2, 1, 0, 1]);
    }

    #[test]
    fn transpose_swaps_dims_and_indices() {
        let t = sample().transpose();
        assert_eq!(t.rows(), 4);
        assert_eq!(t.cols(), 3);
        assert!(t
            .entries()
            .iter()
            .any(|e| e.u == 1 && e.i == 0 && e.r == 5.0));
        // Double transpose is identity.
        let m = sample();
        assert_eq!(m.clone().transpose().transpose(), m);
    }
}
