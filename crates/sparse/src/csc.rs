//! Compressed sparse column form.
//!
//! The column-major sibling of [`CsrMatrix`](crate::CsrMatrix): O(1) access
//! to an item's ratings. Used wherever per-*column* walks are needed —
//! column-grid weighting, per-item statistics, and NOMAD-style
//! column-ownership scheduling.

use crate::coo::{CooMatrix, Rating};

/// Sparse matrix in CSC layout: `col_ptr` has `cols + 1` entries and column
/// `i`'s entries live at `row_idx[col_ptr[i]..col_ptr[i+1]]` / the same
/// range of `values`.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    rows: u32,
    cols: u32,
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
    values: Vec<f32>,
}

impl CscMatrix {
    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// The column-pointer array (length `cols + 1`).
    #[inline]
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// Row indices and values of column `i`.
    ///
    /// # Panics
    /// Panics if `i >= cols` (programmer error).
    #[inline]
    pub fn col(&self, i: u32) -> (&[u32], &[f32]) {
        let lo = self.col_ptr[i as usize];
        let hi = self.col_ptr[i as usize + 1];
        (&self.row_idx[lo..hi], &self.values[lo..hi])
    }

    /// Number of entries in column `i`.
    #[inline]
    pub fn col_len(&self, i: u32) -> usize {
        self.col_ptr[i as usize + 1] - self.col_ptr[i as usize]
    }

    /// Iterates all `(row, col, value)` triples in column-major order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, f32)> + '_ {
        (0..self.cols).flat_map(move |i| {
            let (rows, vals) = self.col(i);
            rows.iter().zip(vals.iter()).map(move |(&u, &r)| (u, i, r))
        })
    }

    /// Converts back to coordinate form (column-major order).
    pub fn to_coo(&self) -> CooMatrix {
        let entries: Vec<Rating> = self.iter().map(|(u, i, r)| Rating::new(u, i, r)).collect();
        CooMatrix::new(self.rows, self.cols, entries).expect("CSC preserves bounds")
    }
}

impl From<&CooMatrix> for CscMatrix {
    /// Builds CSC via counting sort over columns: O(nnz + cols), stable
    /// within a column with respect to the COO entry order.
    fn from(coo: &CooMatrix) -> Self {
        let rows = coo.rows();
        let cols = coo.cols();
        let nnz = coo.nnz();
        let mut col_ptr = vec![0usize; cols as usize + 1];
        for e in coo.entries() {
            col_ptr[e.i as usize + 1] += 1;
        }
        for i in 0..cols as usize {
            col_ptr[i + 1] += col_ptr[i];
        }
        let mut row_idx = vec![0u32; nnz];
        let mut values = vec![0f32; nnz];
        let mut cursor = col_ptr.clone();
        for e in coo.entries() {
            let pos = cursor[e.i as usize];
            row_idx[pos] = e.u;
            values[pos] = e.r;
            cursor[e.i as usize] += 1;
        }
        CscMatrix {
            rows,
            cols,
            col_ptr,
            row_idx,
            values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrMatrix;

    fn sample() -> CooMatrix {
        CooMatrix::new(
            3,
            4,
            vec![
                Rating::new(2, 3, 1.0),
                Rating::new(0, 1, 5.0),
                Rating::new(0, 0, 4.0),
                Rating::new(1, 1, 3.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn csc_column_access() {
        let csc = CscMatrix::from(&sample());
        assert_eq!(csc.rows(), 3);
        assert_eq!(csc.cols(), 4);
        assert_eq!(csc.nnz(), 4);
        assert_eq!(csc.col_ptr(), &[0, 1, 3, 3, 4]);
        let (rows, vals) = csc.col(1);
        assert_eq!(rows, &[0, 1]);
        assert_eq!(vals, &[5.0, 3.0]);
        assert_eq!(csc.col_len(2), 0);
        assert_eq!(csc.col_len(3), 1);
    }

    #[test]
    fn roundtrip_preserves_entries() {
        let coo = sample();
        let back = CscMatrix::from(&coo).to_coo();
        let mut a: Vec<_> = coo
            .entries()
            .iter()
            .map(|e| (e.u, e.i, e.r.to_bits()))
            .collect();
        let mut b: Vec<_> = back
            .entries()
            .iter()
            .map(|e| (e.u, e.i, e.r.to_bits()))
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn csc_of_transpose_equals_csr_swapped() {
        // Structural duality: CSC(A) column i == CSR(Aᵀ) row i.
        let coo = sample();
        let csc = CscMatrix::from(&coo);
        let csr_t = CsrMatrix::from(&coo.clone().transpose());
        for i in 0..coo.cols() {
            let (csc_rows, csc_vals) = csc.col(i);
            let (csr_cols, csr_vals) = csr_t.row(i);
            assert_eq!(csc_rows, csr_cols, "col {i}");
            assert_eq!(csc_vals, csr_vals, "col {i}");
        }
    }

    #[test]
    fn iter_is_column_major() {
        let csc = CscMatrix::from(&sample());
        let cols: Vec<u32> = csc.iter().map(|(_, i, _)| i).collect();
        let mut sorted = cols.clone();
        sorted.sort_unstable();
        assert_eq!(cols, sorted);
    }
}
