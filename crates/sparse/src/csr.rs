//! Compressed sparse row form.
//!
//! CSR gives O(1) access to a row's entries, which the server's `DataManager`
//! needs when building row grids whose groups contain roughly equal numbers
//! of *entries* (not rows), and which evaluation uses to walk held-out
//! ratings per user.

use crate::coo::{CooMatrix, Rating};

/// Sparse matrix in CSR layout: `row_ptr` has `rows + 1` entries and row `u`'s
/// entries live at `col_idx[row_ptr[u]..row_ptr[u+1]]` / same range of `values`.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: u32,
    cols: u32,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// The row-pointer array (length `rows + 1`).
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column indices and values of row `u`.
    ///
    /// # Panics
    /// Panics if `u >= rows` (programmer error).
    #[inline]
    pub fn row(&self, u: u32) -> (&[u32], &[f32]) {
        let lo = self.row_ptr[u as usize];
        let hi = self.row_ptr[u as usize + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Number of entries in row `u`.
    #[inline]
    pub fn row_len(&self, u: u32) -> usize {
        self.row_ptr[u as usize + 1] - self.row_ptr[u as usize]
    }

    /// Iterates all `(row, col, value)` triples in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, f32)> + '_ {
        (0..self.rows).flat_map(move |u| {
            let (cols, vals) = self.row(u);
            cols.iter().zip(vals.iter()).map(move |(&i, &r)| (u, i, r))
        })
    }

    /// Converts back to coordinate form (row-major order).
    pub fn to_coo(&self) -> CooMatrix {
        let entries: Vec<Rating> = self.iter().map(|(u, i, r)| Rating::new(u, i, r)).collect();
        CooMatrix::from_parts_unchecked(self.rows, self.cols, entries)
    }
}

impl From<&CooMatrix> for CsrMatrix {
    /// Builds CSR via counting sort over rows: O(nnz + rows), stable within a
    /// row with respect to the COO entry order.
    fn from(coo: &CooMatrix) -> Self {
        let rows = coo.rows();
        let cols = coo.cols();
        let nnz = coo.nnz();
        let mut row_ptr = vec![0usize; rows as usize + 1];
        for e in coo.entries() {
            row_ptr[e.u as usize + 1] += 1;
        }
        for u in 0..rows as usize {
            row_ptr[u + 1] += row_ptr[u];
        }
        let mut col_idx = vec![0u32; nnz];
        let mut values = vec![0f32; nnz];
        let mut cursor = row_ptr.clone();
        for e in coo.entries() {
            let pos = cursor[e.u as usize];
            col_idx[pos] = e.i;
            values[pos] = e.r;
            cursor[e.u as usize] += 1;
        }
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Rating;

    fn sample() -> CooMatrix {
        CooMatrix::new(
            3,
            4,
            vec![
                Rating::new(2, 3, 1.0),
                Rating::new(0, 1, 5.0),
                Rating::new(0, 0, 4.0),
                Rating::new(1, 2, 3.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn csr_row_access() {
        let csr = CsrMatrix::from(&sample());
        assert_eq!(csr.rows(), 3);
        assert_eq!(csr.cols(), 4);
        assert_eq!(csr.nnz(), 4);
        assert_eq!(csr.row_ptr(), &[0, 2, 3, 4]);
        let (cols, vals) = csr.row(0);
        // Stable with respect to COO order: (0,1) came before (0,0).
        assert_eq!(cols, &[1, 0]);
        assert_eq!(vals, &[5.0, 4.0]);
        assert_eq!(csr.row_len(1), 1);
        let (cols, _) = csr.row(1);
        assert_eq!(cols, &[2]);
    }

    #[test]
    fn empty_rows_have_zero_len() {
        let coo = CooMatrix::new(3, 2, vec![Rating::new(2, 0, 1.0)]).unwrap();
        let csr = CsrMatrix::from(&coo);
        assert_eq!(csr.row_len(0), 0);
        assert_eq!(csr.row_len(1), 0);
        assert_eq!(csr.row_len(2), 1);
    }

    #[test]
    fn roundtrip_through_coo_preserves_entries() {
        let coo = sample();
        let csr = CsrMatrix::from(&coo);
        let back = csr.to_coo();
        let mut a: Vec<_> = coo
            .entries()
            .iter()
            .map(|e| (e.u, e.i, e.r.to_bits()))
            .collect();
        let mut b: Vec<_> = back
            .entries()
            .iter()
            .map(|e| (e.u, e.i, e.r.to_bits()))
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn iter_visits_row_major() {
        let csr = CsrMatrix::from(&sample());
        let rows: Vec<u32> = csr.iter().map(|(u, _, _)| u).collect();
        let mut sorted = rows.clone();
        sorted.sort_unstable();
        assert_eq!(rows, sorted);
        assert_eq!(rows.len(), 4);
    }
}
