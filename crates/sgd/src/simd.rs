//! Runtime-dispatched SIMD kernels for the SGD hot path and the fp16 codec.
//!
//! The paper's CPU workers get their throughput from hand-written AVX512
//! kernels (§3.4). This module is the portable-Rust analog: AVX2+FMA
//! `std::arch` implementations of the fused dot+update SGD step and an F16C
//! path for the binary16 codec, selected **once at runtime** via
//! `is_x86_feature_detected!` and cached. Every entry point has a scalar
//! fallback with identical semantics (up to floating-point reassociation in
//! the dot product), so the crate builds and tests pass on any architecture.
//!
//! Dispatch granularity is one branch on a relaxed atomic per kernel call —
//! noise next to the `O(k)` work each call does at the paper's k = 128.
//!
//! # Backend equality guarantees
//!
//! * `fp16` encode/decode: **bit-exact** across backends. VCVTPS2PH with
//!   round-to-nearest-even implements the same IEEE-754 conversion as the
//!   scalar codec in [`crate::fp16`], including subnormals (the F16C
//!   instructions are exempt from DAZ/FTZ) and NaN quieting.
//! * `dot_i8`: **bit-exact** across backends — the accumulation is integer
//!   arithmetic, so VPMADDWD and the scalar loop produce identical i32s.
//! * `dot` / `dot_f16` / `fused_step_ptr`: scalar and AVX2 differ only by reassociation
//!   of the dot reduction and FMA contraction in the update (relative error
//!   ≤ ~k·ε). Within one process the backend is fixed, so the plain and
//!   shared SGD paths — both of which route through [`fused_step_ptr`] —
//!   produce identical results to each other.

use hcc_sync::{AtomicU8, Ordering};

/// Kernel implementation tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable scalar loops (auto-vectorizable, no intrinsics).
    Scalar,
    /// AVX2 + FMA + F16C `std::arch` kernels (x86-64 only).
    Avx2,
}

impl Backend {
    /// Short name used in bench output and logs.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
        }
    }
}

const BK_UNSET: u8 = 0;
const BK_SCALAR: u8 = 1;
const BK_AVX2: u8 = 2;

/// Cached dispatch decision; `BK_UNSET` until first use or after
/// [`reset_backend`].
static ACTIVE: AtomicU8 = AtomicU8::new(BK_UNSET);

/// Probes CPU features. AVX2, FMA and F16C are grouped as one tier: every
/// mainstream core since Haswell (2013) has all three, and grouping keeps
/// the dispatch table binary.
fn detect() -> Backend {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2")
            && is_x86_feature_detected!("fma")
            && is_x86_feature_detected!("f16c")
        {
            return Backend::Avx2;
        }
    }
    Backend::Scalar
}

/// The backend all dispatched kernels currently use. First call detects and
/// caches; later calls are a single relaxed load.
#[inline]
pub fn active_backend() -> Backend {
    // ordering: Relaxed — racy one-time init: every thread that misses
    // computes the same detection result, so publishing the cached code
    // needs no ordering; the value is a self-contained u8 code.
    match ACTIVE.load(Ordering::Relaxed) {
        BK_AVX2 => Backend::Avx2,
        BK_SCALAR => Backend::Scalar,
        _ => {
            let b = detect();
            let code = match b {
                Backend::Scalar => BK_SCALAR,
                Backend::Avx2 => BK_AVX2,
            };
            // ordering: Relaxed — see the load above; duplicate racing
            // stores write the same value.
            ACTIVE.store(code, Ordering::Relaxed);
            b
        }
    }
}

/// Forces a specific backend (benchmarks and equivalence tests).
///
/// Returns `Err` without changing anything if the requested backend is not
/// available on this CPU, so tests stay green on non-AVX2 machines.
pub fn set_backend(b: Backend) -> Result<(), &'static str> {
    if b == Backend::Avx2 && detect() != Backend::Avx2 {
        return Err("avx2 backend not supported on this CPU");
    }
    let code = match b {
        Backend::Scalar => BK_SCALAR,
        Backend::Avx2 => BK_AVX2,
    };
    // ordering: Relaxed — test/bench-only override; callers sequence their
    // own kernel calls after it on the same thread.
    ACTIVE.store(code, Ordering::Relaxed);
    Ok(())
}

/// Drops any forced backend; the next kernel call re-detects.
pub fn reset_backend() {
    // ordering: Relaxed — see `set_backend`.
    ACTIVE.store(BK_UNSET, Ordering::Relaxed);
}

/// Capability tag naming the exact instruction sets the dispatched kernels
/// are using, for telemetry headers and bench output. Unlike
/// [`Backend::name`], this spells out the grouped features so a recorded
/// timeline is attributable to a precise code path.
pub fn dispatch_tag() -> &'static str {
    match active_backend() {
        Backend::Scalar => "scalar",
        Backend::Avx2 => "avx2+fma+f16c",
    }
}

// ---------------------------------------------------------------------------
// Dot product
// ---------------------------------------------------------------------------

/// Dispatched inner product of two equal-length slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    match active_backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => {
            // SAFETY: `active_backend() == Avx2` implies AVX2+FMA were
            // detected at runtime; both pointers cover `a.len()` valid f32s.
            unsafe { avx2::dot_ptr(a.as_ptr(), b.as_ptr(), a.len()) }
        }
        _ => scalar::dot(a, b),
    }
}

/// Dispatched mixed-precision inner product: an f32 query row against a
/// binary16-encoded stored row (the serving fp16 tier). The AVX2 path
/// widens 8 halves per iteration with VCVTPH2PS and FMA-accumulates; the
/// scalar path decodes through [`crate::fp16::f16_to_f32`]. Both compute
/// `Σ a[j]·decode(b[j])`, differing only by reduction reassociation.
#[inline]
pub fn dot_f16(a: &[f32], b: &[u16]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    match active_backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => {
            // SAFETY: backend implies AVX2+FMA+F16C present; both pointers
            // cover `a.len()` valid elements (debug-asserted equal above,
            // and the kernel never reads past `min` of the two in release
            // because the dispatcher's contract is equal lengths).
            unsafe { avx2::dot_f16_ptr(a.as_ptr(), b.as_ptr(), a.len().min(b.len())) }
        }
        _ => {
            let mut acc = 0.0f32;
            for (&x, &h) in a.iter().zip(b.iter()) {
                acc += x * crate::fp16::f16_to_f32(h);
            }
            acc
        }
    }
}

/// Dispatched integer inner product of two int8 rows (the serving int8
/// tier). Exact i32 accumulation — scalar and AVX2 agree bit-for-bit, so
/// equivalence tests can use strict equality.
#[inline]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    match active_backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => {
            // SAFETY: backend implies AVX2 present; both pointers cover
            // `min(a.len(), b.len())` valid i8s.
            unsafe { avx2::dot_i8_ptr(a.as_ptr(), b.as_ptr(), a.len().min(b.len())) }
        }
        _ => crate::int8::dot_i8_scalar(a, b),
    }
}

// ---------------------------------------------------------------------------
// Fused dot + update SGD step over raw rows
// ---------------------------------------------------------------------------

/// One fused SGD step over raw factor rows: computes `e = r − p·q`, then
///
/// ```text
/// p[j] += lr * (e*q[j] − lambda_p*p[j])
/// q[j] += lr * (e*p_old[j] − lambda_q*q[j])
/// ```
///
/// using the *old* `p[j]` in the `q` update (FPSGD/CuMF_SGD convention).
/// Returns `e`. Both the plain-slice and the shared-atomic SGD paths call
/// this one function, which is what makes them bit-identical to each other.
///
/// # Safety
///
/// * `p` and `q` must each point to `k` valid, aligned, writable `f32`s.
/// * The two rows must not overlap.
/// * Concurrent plain access from other threads (the Hogwild case) is
///   tolerated by the algorithm but must come from rows obtained via
///   [`crate::factors::SharedFactors`]; see `sgd_step_shared` for the
///   aliasing argument.
// SHARED: p, q — Hogwild factor rows; other threads may be running this
// same kernel on the same rows, which the algorithm tolerates lane-wise.
#[inline]
pub unsafe fn fused_step_ptr(
    p: *mut f32,
    q: *mut f32,
    k: usize,
    r: f32,
    lr: f32,
    lambda_p: f32,
    lambda_q: f32,
) -> f32 {
    match active_backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => {
            // SAFETY: backend implies AVX2+FMA present; pointer contracts are
            // the caller's (documented above) and forwarded unchanged.
            unsafe { avx2::fused_step_ptr(p, q, k, r, lr, lambda_p, lambda_q) }
        }
        // SAFETY: pointer contracts forwarded unchanged.
        _ => unsafe { scalar::fused_step_ptr(p, q, k, r, lr, lambda_p, lambda_q) },
    }
}

// ---------------------------------------------------------------------------
// fp16 codec bulk conversion
// ---------------------------------------------------------------------------

/// Dispatched bulk f32 → binary16 conversion; bit-exact with
/// [`crate::fp16::f32_to_f16`] on every input including NaN and subnormals.
///
/// # Panics
/// Panics on length mismatch.
#[inline]
pub fn encode_f16(src: &[f32], dst: &mut [u16]) {
    assert_eq!(src.len(), dst.len(), "encode buffers must match");
    match active_backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => {
            // SAFETY: backend implies F16C present; lengths checked above.
            unsafe { avx2::encode_f16(src, dst) }
        }
        _ => {
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = crate::fp16::f32_to_f16(s);
            }
        }
    }
}

/// Dispatched bulk binary16 → f32 conversion; bit-exact with
/// [`crate::fp16::f16_to_f32`].
///
/// # Panics
/// Panics on length mismatch.
#[inline]
pub fn decode_f16(src: &[u16], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "decode buffers must match");
    match active_backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => {
            // SAFETY: backend implies F16C present; lengths checked above.
            unsafe { avx2::decode_f16(src, dst) }
        }
        _ => {
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = crate::fp16::f16_to_f32(s);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Scalar reference implementations
// ---------------------------------------------------------------------------

/// Portable fallbacks. These are the *reference semantics* the SIMD paths are
/// tested against; they intentionally mirror the pre-SIMD seed kernels.
pub mod scalar {
    /// Plain-loop inner product (LLVM auto-vectorizes the zip).
    #[inline]
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let mut acc = 0.0f32;
        for (&x, &y) in a.iter().zip(b.iter()) {
            acc += x * y;
        }
        acc
    }

    /// Scalar fused step. See [`super::fused_step_ptr`] for the contract.
    ///
    /// # Safety
    /// Same as [`super::fused_step_ptr`].
    // SHARED: p, q — same Hogwild factor rows as the dispatching wrapper.
    #[inline]
    pub unsafe fn fused_step_ptr(
        p: *mut f32,
        q: *mut f32,
        k: usize,
        r: f32,
        lr: f32,
        lambda_p: f32,
        lambda_q: f32,
    ) -> f32 {
        let mut acc = 0.0f32;
        for j in 0..k {
            // SAFETY: j < k and the caller guarantees k valid elements.
            unsafe {
                acc += *p.add(j) * *q.add(j);
            }
        }
        let e = r - acc;
        for j in 0..k {
            // SAFETY: j < k; rows don't overlap, so the reads of p_old/q_old
            // see the values from before this loop iteration's writes.
            unsafe {
                let pj = p.add(j);
                let qj = q.add(j);
                let p_old = *pj;
                let q_old = *qj;
                *pj = p_old + lr * (e * q_old - lambda_p * p_old);
                *qj = q_old + lr * (e * p_old - lambda_q * q_old);
            }
        }
        e
    }
}

// ---------------------------------------------------------------------------
// AVX2 + FMA + F16C implementations
// ---------------------------------------------------------------------------

/// x86-64 vector kernels. Every function here requires the CPU features its
/// `#[target_feature]` attribute names; the dispatcher guarantees that by
/// construction, and tests gate direct calls on `detect()`-equivalent
/// checks.
#[cfg(target_arch = "x86_64")]
pub mod avx2 {
    use std::arch::x86_64::*;

    /// Horizontal sum of one 8-lane register.
    ///
    /// # Safety
    /// Requires AVX.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn hsum(v: __m256) -> f32 {
        // Register-only intrinsics are safe inside a matching
        // #[target_feature] fn — no pointer access, so no unsafe block.
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps(v, 1);
        let s = _mm_add_ps(lo, hi);
        let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
        let s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
        _mm_cvtss_f32(s)
    }

    /// 8-lane FMA inner product with two independent accumulators (breaks
    /// the add chain so both FMA ports stay busy at k = 128).
    ///
    /// # Safety
    /// Requires AVX2+FMA; `a` and `b` must point to `k` valid f32s.
    // SHARED: a, b — factor rows concurrent Hogwild writers may touch;
    // the dot only needs per-lane untorn reads.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot_ptr(a: *const f32, b: *const f32, k: usize) -> f32 {
        // SAFETY: all element accesses below stay inside `0..k`, which the
        // caller guarantees is valid for both pointers; loads are unaligned
        // (`loadu`) so no alignment requirement beyond f32's.
        unsafe {
            let mut acc0 = _mm256_setzero_ps();
            let mut acc1 = _mm256_setzero_ps();
            let mut j = 0usize;
            while j + 16 <= k {
                acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a.add(j)), _mm256_loadu_ps(b.add(j)), acc0);
                acc1 = _mm256_fmadd_ps(
                    _mm256_loadu_ps(a.add(j + 8)),
                    _mm256_loadu_ps(b.add(j + 8)),
                    acc1,
                );
                j += 16;
            }
            if j + 8 <= k {
                acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a.add(j)), _mm256_loadu_ps(b.add(j)), acc0);
                j += 8;
            }
            let mut acc = hsum(_mm256_add_ps(acc0, acc1));
            while j < k {
                acc += *a.add(j) * *b.add(j);
                j += 1;
            }
            acc
        }
    }

    /// Fused dot+update step, vector form. Same math as
    /// [`super::scalar::fused_step_ptr`] with FMA contraction.
    ///
    /// # Safety
    /// Requires AVX2+FMA; same pointer contract as
    /// [`super::fused_step_ptr`] (`k` valid f32s each, non-overlapping).
    // SHARED: p, q — same Hogwild factor rows as the dispatching wrapper.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn fused_step_ptr(
        p: *mut f32,
        q: *mut f32,
        k: usize,
        r: f32,
        lr: f32,
        lambda_p: f32,
        lambda_q: f32,
    ) -> f32 {
        // SAFETY: element accesses stay in `0..k` (caller contract); the
        // rows don't overlap, so loading pv/qv before storing both keeps
        // the "old p in the q update" semantics of the scalar kernel.
        unsafe {
            let e = r - dot_ptr(p, q, k);
            let e_v = _mm256_set1_ps(e);
            let lr_v = _mm256_set1_ps(lr);
            let lp_v = _mm256_set1_ps(lambda_p);
            let lq_v = _mm256_set1_ps(lambda_q);
            let mut j = 0usize;
            while j + 8 <= k {
                let pv = _mm256_loadu_ps(p.add(j));
                let qv = _mm256_loadu_ps(q.add(j));
                // gp = e*q − λp*p ; gq = e*p_old − λq*q (fnmadd: −a*b + c)
                let gp = _mm256_fnmadd_ps(lp_v, pv, _mm256_mul_ps(e_v, qv));
                let gq = _mm256_fnmadd_ps(lq_v, qv, _mm256_mul_ps(e_v, pv));
                _mm256_storeu_ps(p.add(j), _mm256_fmadd_ps(lr_v, gp, pv));
                _mm256_storeu_ps(q.add(j), _mm256_fmadd_ps(lr_v, gq, qv));
                j += 8;
            }
            while j < k {
                let pj = p.add(j);
                let qj = q.add(j);
                let p_old = *pj;
                let q_old = *qj;
                *pj = p_old + lr * (e * q_old - lambda_p * p_old);
                *qj = q_old + lr * (e * p_old - lambda_q * q_old);
                j += 1;
            }
            e
        }
    }

    /// Mixed-precision inner product: f32 row `a` against f16-encoded row
    /// `b`, widening 8 halves per iteration with VCVTPH2PS.
    ///
    /// # Safety
    /// Requires AVX2+FMA+F16C; `a` must point to `k` valid f32s and `b` to
    /// `k` valid u16 half patterns.
    // SHARED: a, b — serving-shard rows, read-only after snapshot
    // publication; no writer exists while queries run.
    #[target_feature(enable = "avx2,fma,f16c")]
    pub unsafe fn dot_f16_ptr(a: *const f32, b: *const u16, k: usize) -> f32 {
        // SAFETY: element accesses stay in `0..k`, valid for both pointers
        // per the caller contract; the 128-bit load reads 8 u16 = 16 bytes
        // at b+j, in bounds while j+8 <= k; loads are unaligned.
        unsafe {
            let mut acc0 = _mm256_setzero_ps();
            let mut acc1 = _mm256_setzero_ps();
            let mut j = 0usize;
            while j + 16 <= k {
                let b0 = _mm256_cvtph_ps(_mm_loadu_si128(b.add(j) as *const __m128i));
                let b1 = _mm256_cvtph_ps(_mm_loadu_si128(b.add(j + 8) as *const __m128i));
                acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a.add(j)), b0, acc0);
                acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a.add(j + 8)), b1, acc1);
                j += 16;
            }
            if j + 8 <= k {
                let bv = _mm256_cvtph_ps(_mm_loadu_si128(b.add(j) as *const __m128i));
                acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a.add(j)), bv, acc0);
                j += 8;
            }
            let mut acc = hsum(_mm256_add_ps(acc0, acc1));
            while j < k {
                acc += *a.add(j) * crate::fp16::f16_to_f32(*b.add(j));
                j += 1;
            }
            acc
        }
    }

    /// Horizontal sum of one 8-lane i32 register.
    ///
    /// # Safety
    /// Requires AVX2.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn hsum_epi32(v: __m256i) -> i32 {
        // Register-only intrinsics; no pointer access.
        let lo = _mm256_castsi256_si128(v);
        let hi = _mm256_extracti128_si256(v, 1);
        let s = _mm_add_epi32(lo, hi);
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b01_00_11_10));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b00_00_00_01));
        _mm_cvtsi128_si32(s)
    }

    /// Integer inner product of two int8 rows: 16 lanes widened to i16 per
    /// step (VPMOVSXBW), pairwise-multiplied and summed into i32 lanes
    /// (VPMADDWD). Exact — bit-identical to the scalar reference.
    ///
    /// # Safety
    /// Requires AVX2; `a` and `b` must each point to `k` valid i8s.
    // SHARED: a, b — quantized serving-shard rows, read-only after
    // snapshot publication.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_i8_ptr(a: *const i8, b: *const i8, k: usize) -> i32 {
        // SAFETY: element accesses stay in `0..k`, valid per the caller
        // contract; each 128-bit load reads 16 i8 = 16 bytes at offset j,
        // in bounds while j+16 <= k. i32 lanes cannot overflow: each
        // madd term is ≤ 2·127² and at most k/8 terms accumulate per lane.
        unsafe {
            let mut acc = _mm256_setzero_si256();
            let mut j = 0usize;
            while j + 16 <= k {
                let av = _mm256_cvtepi8_epi16(_mm_loadu_si128(a.add(j) as *const __m128i));
                let bv = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.add(j) as *const __m128i));
                acc = _mm256_add_epi32(acc, _mm256_madd_epi16(av, bv));
                j += 16;
            }
            let mut total = hsum_epi32(acc);
            while j < k {
                total += *a.add(j) as i32 * *b.add(j) as i32;
                j += 1;
            }
            total
        }
    }

    /// Bulk f32 → f16 via VCVTPS2PH (round-to-nearest-even), 8 lanes/iter.
    ///
    /// # Safety
    /// Requires F16C (+AVX); `src` and `dst` must be equal length.
    #[target_feature(enable = "avx,f16c")]
    pub unsafe fn encode_f16(src: &[f32], dst: &mut [u16]) {
        debug_assert_eq!(src.len(), dst.len());
        let n = src.len();
        let sp = src.as_ptr();
        let dp = dst.as_mut_ptr();
        let mut j = 0usize;
        // SAFETY: accesses stay in `0..n`, within both slices; the 128-bit
        // store writes 8 u16 = 16 bytes at dp+j, valid while j+8 <= n.
        unsafe {
            while j + 8 <= n {
                let v = _mm256_loadu_ps(sp.add(j));
                // Rounding imm 0 = round-to-nearest-even, matching the
                // scalar codec (stdarch's 3-bit imm check rejects the
                // traditional `| _MM_FROUND_NO_EXC` spelling).
                let h = _mm256_cvtps_ph::<_MM_FROUND_TO_NEAREST_INT>(v);
                _mm_storeu_si128(dp.add(j) as *mut __m128i, h);
                j += 8;
            }
        }
        for jj in j..n {
            dst[jj] = crate::fp16::f32_to_f16(src[jj]);
        }
    }

    /// Bulk f16 → f32 via VCVTPH2PS, 8 lanes/iter.
    ///
    /// # Safety
    /// Requires F16C (+AVX); `src` and `dst` must be equal length.
    #[target_feature(enable = "avx,f16c")]
    pub unsafe fn decode_f16(src: &[u16], dst: &mut [f32]) {
        debug_assert_eq!(src.len(), dst.len());
        let n = src.len();
        let sp = src.as_ptr();
        let dp = dst.as_mut_ptr();
        let mut j = 0usize;
        // SAFETY: accesses stay in `0..n`; the 128-bit load reads 8 u16 =
        // 16 bytes at sp+j, valid while j+8 <= n.
        unsafe {
            while j + 8 <= n {
                let h = _mm_loadu_si128(sp.add(j) as *const __m128i);
                _mm256_storeu_ps(dp.add(j), _mm256_cvtph_ps(h));
                j += 8;
            }
        }
        for jj in j..n {
            dst[jj] = crate::fp16::f16_to_f32(src[jj]);
        }
    }
}

/// Serializes tests that force the global backend or depend on it staying
/// fixed across several kernel calls (e.g. exact plain-vs-shared equality).
/// The default test harness runs tests on multiple threads in one process,
/// and `ACTIVE` is process-global.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// True when the AVX2 tier is runtime-available; direct `avx2::` calls
    /// below are gated on this, so the suite passes on any CPU.
    fn avx2_available() -> bool {
        detect() == Backend::Avx2
    }

    #[test]
    fn dispatch_tag_names_the_active_tier() {
        let _guard = test_lock();
        reset_backend();
        let tag = dispatch_tag();
        match active_backend() {
            Backend::Scalar => assert_eq!(tag, "scalar"),
            Backend::Avx2 => assert_eq!(tag, "avx2+fma+f16c"),
        }
    }

    #[test]
    fn detection_is_stable_and_cached() {
        let _guard = test_lock();
        reset_backend();
        let a = active_backend();
        let b = active_backend();
        assert_eq!(a, b);
        assert_eq!(a, detect());
    }

    #[test]
    fn forcing_scalar_always_works_and_avx2_errors_when_absent() {
        let _guard = test_lock();
        assert!(set_backend(Backend::Scalar).is_ok());
        assert_eq!(active_backend(), Backend::Scalar);
        match (avx2_available(), set_backend(Backend::Avx2)) {
            (true, res) => {
                assert!(res.is_ok());
                assert_eq!(active_backend(), Backend::Avx2);
            }
            (false, res) => {
                assert!(res.is_err());
                // A refused override leaves the previous choice in place.
                assert_eq!(active_backend(), Backend::Scalar);
            }
        }
        reset_backend();
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn dot_backends_agree_within_reassociation_tolerance() {
        if !avx2_available() {
            return;
        }
        for k in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 31, 64, 127, 128, 333] {
            let a: Vec<f32> = (0..k)
                .map(|j| ((j * 37 + 11) as f32 * 0.01).sin())
                .collect();
            let b: Vec<f32> = (0..k)
                .map(|j| ((j * 53 + 29) as f32 * 0.01).cos())
                .collect();
            let s = scalar::dot(&a, &b) as f64;
            // SAFETY: AVX2+FMA runtime-checked above; slices hold k f32s.
            let v = unsafe { avx2::dot_ptr(a.as_ptr(), b.as_ptr(), k) } as f64;
            assert!(
                (s - v).abs() <= 1e-5 * s.abs().max(1.0),
                "k {k}: scalar {s} vs avx2 {v}"
            );
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn dot_f16_backends_agree_within_reassociation_tolerance() {
        if !avx2_available() {
            return;
        }
        for k in [0usize, 1, 7, 8, 9, 15, 16, 17, 31, 64, 127, 128] {
            let a: Vec<f32> = (0..k)
                .map(|j| ((j * 41 + 7) as f32 * 0.013).sin())
                .collect();
            let b: Vec<u16> = (0..k)
                .map(|j| crate::fp16::f32_to_f16(((j * 17 + 3) as f32 * 0.021).cos()))
                .collect();
            let s: f32 = a
                .iter()
                .zip(&b)
                .map(|(&x, &h)| x * crate::fp16::f16_to_f32(h))
                .sum();
            // SAFETY: AVX2+FMA+F16C runtime-checked above; slices hold k elems.
            let v = unsafe { avx2::dot_f16_ptr(a.as_ptr(), b.as_ptr(), k) };
            assert!(
                (s - v).abs() <= 1e-5 * s.abs().max(1.0),
                "k {k}: scalar {s} vs avx2 {v}"
            );
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn dot_i8_backends_bit_exact() {
        if !avx2_available() {
            return;
        }
        for k in [0usize, 1, 7, 15, 16, 17, 31, 32, 33, 64, 100, 127, 128] {
            let a: Vec<i8> = (0..k).map(|j| ((j * 37 + 11) % 255) as i8).collect();
            let b: Vec<i8> = (0..k).map(|j| ((j * 91 + 53) % 255) as i8).collect();
            let s = crate::int8::dot_i8_scalar(&a, &b);
            // SAFETY: AVX2 runtime-checked above; slices hold k i8s.
            let v = unsafe { avx2::dot_i8_ptr(a.as_ptr(), b.as_ptr(), k) };
            assert_eq!(s, v, "k {k}");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn fused_step_backends_agree_within_tolerance() {
        if !avx2_available() {
            return;
        }
        for k in [1usize, 4, 8, 12, 16, 100, 128] {
            let base_p: Vec<f32> = (0..k).map(|j| 0.1 + (j as f32) * 0.003).collect();
            let base_q: Vec<f32> = (0..k).map(|j| 0.2 - (j as f32) * 0.001).collect();
            let mut ps = base_p.clone();
            let mut qs = base_q.clone();
            // SAFETY: ps/qs are distinct exclusive buffers of length k.
            let es = unsafe {
                scalar::fused_step_ptr(ps.as_mut_ptr(), qs.as_mut_ptr(), k, 3.3, 0.01, 0.02, 0.03)
            };
            let mut pv = base_p.clone();
            let mut qv = base_q.clone();
            // SAFETY: AVX2+FMA runtime-checked; pv/qv distinct, length k.
            let ev = unsafe {
                avx2::fused_step_ptr(pv.as_mut_ptr(), qv.as_mut_ptr(), k, 3.3, 0.01, 0.02, 0.03)
            };
            assert!(
                (es - ev).abs() <= 1e-5 * es.abs().max(1.0),
                "k {k}: e {es} vs {ev}"
            );
            for j in 0..k {
                assert!(
                    (ps[j] - pv[j]).abs() <= 1e-5 * ps[j].abs().max(1.0),
                    "k {k} p[{j}]: {} vs {}",
                    ps[j],
                    pv[j]
                );
                assert!(
                    (qs[j] - qv[j]).abs() <= 1e-5 * qs[j].abs().max(1.0),
                    "k {k} q[{j}]: {} vs {}",
                    qs[j],
                    qv[j]
                );
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn f16_codec_backends_bit_exact_including_odd_tails() {
        if !avx2_available() {
            return;
        }
        // Mix of normals, subnormals, ±0, ±inf, NaN and rounding boundaries;
        // length 21 exercises the vector body and a 5-element tail.
        let src: Vec<f32> = vec![
            0.0,
            -0.0,
            1.0,
            -1.0,
            65504.0,
            65520.0,
            -1e6,
            1e-10,
            2.0f32.powi(-25),
            2.0f32.powi(-25) * 1.5,
            2.0f32.powi(-14),
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
            1.0 + 2.0f32.powi(-11),
            1.0 + 3.0 * 2.0f32.powi(-11),
            std::f32::consts::PI,
            -std::f32::consts::E,
            1234.5678,
            -0.000123,
            42.0,
        ];
        let scalar_out: Vec<u16> = src.iter().map(|&x| crate::fp16::f32_to_f16(x)).collect();
        let mut simd_out = vec![0u16; src.len()];
        // SAFETY: F16C runtime-checked; equal lengths.
        unsafe { avx2::encode_f16(&src, &mut simd_out) };
        assert_eq!(scalar_out, simd_out);
        // Decode every possible f16 pattern both ways: also bit-exact.
        let all: Vec<u16> = (0..=u16::MAX).collect();
        let ds: Vec<f32> = all.iter().map(|&h| crate::fp16::f16_to_f32(h)).collect();
        let mut dv = vec![0f32; all.len()];
        // SAFETY: F16C runtime-checked; equal lengths.
        unsafe { avx2::decode_f16(&all, &mut dv) };
        for (j, (x, y)) in ds.iter().zip(dv.iter()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "pattern {j:#06x}");
        }
    }

    /// Property tests pitting the AVX2 tier against the scalar reference on
    /// randomized inputs (bit-exact for the f16 codec, reassociation
    /// tolerance for the arithmetic kernels). Vacuous on non-AVX2 hardware.
    #[cfg(target_arch = "x86_64")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_f16_encode_bit_exact_vs_scalar(
                bits in proptest::collection::vec(0u64..(1u64 << 32), 0..64)
            ) {
                if !avx2_available() {
                    return;
                }
                let src: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b as u32)).collect();
                let want: Vec<u16> = src.iter().map(|&x| crate::fp16::f32_to_f16(x)).collect();
                let mut got = vec![0u16; src.len()];
                // SAFETY: F16C runtime-checked above; equal lengths.
                unsafe { avx2::encode_f16(&src, &mut got) };
                prop_assert_eq!(want, got);
            }

            #[test]
            fn prop_f16_decode_bit_exact_vs_scalar(
                halves in proptest::collection::vec(0u64..65536, 0..64)
            ) {
                if !avx2_available() {
                    return;
                }
                let src: Vec<u16> = halves.iter().map(|&h| h as u16).collect();
                let want: Vec<u32> =
                    src.iter().map(|&h| crate::fp16::f16_to_f32(h).to_bits()).collect();
                let mut got = vec![0f32; src.len()];
                // SAFETY: F16C runtime-checked above; equal lengths.
                unsafe { avx2::decode_f16(&src, &mut got) };
                let got: Vec<u32> = got.iter().map(|x| x.to_bits()).collect();
                prop_assert_eq!(want, got);
            }

            #[test]
            fn prop_fused_step_backends_agree(
                a in proptest::collection::vec(-1.5f32..1.5, 1..160),
                b in proptest::collection::vec(-1.5f32..1.5, 1..160),
                r in -5.0f32..5.0,
            ) {
                if !avx2_available() {
                    return;
                }
                let k = a.len().min(b.len());
                let mut ps = a[..k].to_vec();
                let mut qs = b[..k].to_vec();
                // SAFETY: ps/qs are distinct exclusive buffers of length k.
                let es = unsafe {
                    scalar::fused_step_ptr(ps.as_mut_ptr(), qs.as_mut_ptr(), k, r, 0.01, 0.02, 0.03)
                };
                let mut pv = a[..k].to_vec();
                let mut qv = b[..k].to_vec();
                // SAFETY: AVX2+FMA runtime-checked; pv/qv distinct, length k.
                let ev = unsafe {
                    avx2::fused_step_ptr(pv.as_mut_ptr(), qv.as_mut_ptr(), k, r, 0.01, 0.02, 0.03)
                };
                prop_assert!((es - ev).abs() <= 1e-5 * es.abs().max(1.0));
                for j in 0..k {
                    prop_assert!((ps[j] - pv[j]).abs() <= 1e-5 * ps[j].abs().max(1.0));
                    prop_assert!((qs[j] - qv[j]).abs() <= 1e-5 * qs[j].abs().max(1.0));
                }
            }
        }
    }
}
