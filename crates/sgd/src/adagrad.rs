//! AdaGrad-scaled Hogwild SGD.
//!
//! The original CuMF_SGD ships both vanilla SGD and AdaGrad kernels; the
//! HCC-MF paper trains with a fixed γ (Table 3), but per-parameter adaptive
//! steps `η_t = η₀ / √(Σ g²+ε)` remove the learning-rate tuning burden and
//! converge faster in the skewed-popularity regime (hot items see many
//! updates and get small steps; cold ones keep large steps). Provided as a
//! drop-in alternative epoch function with its own accumulator state.

use crate::factors::SharedFactors;
use crate::kernel::dot;
use hcc_sparse::Rating;
use std::sync::atomic::Ordering;

/// Per-parameter squared-gradient accumulators.
#[derive(Debug, Clone)]
pub struct AdaGradState {
    accum_p: SharedFactors,
    accum_q: SharedFactors,
}

impl AdaGradState {
    /// Zeroed accumulators for `m × k` user and `n × k` item factors.
    pub fn new(m: usize, n: usize, k: usize) -> AdaGradState {
        AdaGradState {
            accum_p: SharedFactors::zeros(m, k),
            accum_q: SharedFactors::zeros(n, k),
        }
    }

    /// Mean accumulated squared gradient over `P` (diagnostic; grows
    /// monotonically with updates).
    pub fn mean_accum_p(&self) -> f64 {
        let snap = self.accum_p.snapshot();
        let s = snap.as_slice();
        if s.is_empty() {
            return 0.0;
        }
        s.iter().map(|&v| v as f64).sum::<f64>() / s.len() as f64
    }
}

/// AdaGrad epoch configuration.
#[derive(Debug, Clone, Copy)]
pub struct AdaGradConfig {
    /// Hogwild threads.
    pub threads: usize,
    /// Base step η₀ (AdaGrad tolerates much larger values than plain SGD's
    /// γ; 0.05–0.1 is typical).
    pub eta0: f32,
    /// L2 on `P`.
    pub lambda_p: f32,
    /// L2 on `Q`.
    pub lambda_q: f32,
    /// Stabilizer ε inside the square root.
    pub epsilon: f32,
}

impl Default for AdaGradConfig {
    fn default() -> Self {
        AdaGradConfig {
            threads: 1,
            eta0: 0.05,
            lambda_p: 0.01,
            lambda_q: 0.01,
            epsilon: 1e-8,
        }
    }
}

/// One AdaGrad update. Returns the pre-update error.
#[inline]
#[allow(clippy::too_many_arguments)] // hot kernel: flat scalars beat a params struct
fn adagrad_step(
    p: &SharedFactors,
    q: &SharedFactors,
    state: &AdaGradState,
    u: usize,
    i: usize,
    r: f32,
    cfg: &AdaGradConfig,
    scratch: &mut [f32],
) -> f32 {
    let k = p.k();
    debug_assert_eq!(scratch.len(), 2 * k);
    let (pl, ql) = scratch.split_at_mut(k);
    let p_cells = p.row_cells(u);
    let q_cells = q.row_cells(i);
    let ap_cells = state.accum_p.row_cells(u);
    let aq_cells = state.accum_q.row_cells(i);
    // ordering: Relaxed throughout this kernel — Hogwild cells (factor and
    // AdaGrad accumulator alike) carry no cross-cell ordering; racing
    // read-modify-write interleavings lose increments at worst, which the
    // asynchronous-SGD convergence argument tolerates.
    for j in 0..k {
        pl[j] = f32::from_bits(p_cells[j].load(Ordering::Relaxed));
        ql[j] = f32::from_bits(q_cells[j].load(Ordering::Relaxed));
    }
    let e = r - dot(pl, ql);
    for j in 0..k {
        let gp = e * ql[j] - cfg.lambda_p * pl[j];
        let gq = e * pl[j] - cfg.lambda_q * ql[j];
        // ordering: Relaxed — see the kernel-level note above.
        let ap = f32::from_bits(ap_cells[j].load(Ordering::Relaxed)) + gp * gp;
        let aq = f32::from_bits(aq_cells[j].load(Ordering::Relaxed)) + gq * gq;
        ap_cells[j].store(ap.to_bits(), Ordering::Relaxed);
        aq_cells[j].store(aq.to_bits(), Ordering::Relaxed);
        let p_new = pl[j] + cfg.eta0 * gp / (ap + cfg.epsilon).sqrt();
        let q_new = ql[j] + cfg.eta0 * gq / (aq + cfg.epsilon).sqrt();
        // ordering: Relaxed — see the kernel-level note above.
        p_cells[j].store(p_new.to_bits(), Ordering::Relaxed);
        q_cells[j].store(q_new.to_bits(), Ordering::Relaxed);
    }
    e
}

/// One Hogwild epoch with AdaGrad steps. Returns summed squared pre-update
/// errors.
pub fn adagrad_hogwild_epoch(
    entries: &[Rating],
    p: &SharedFactors,
    q: &SharedFactors,
    state: &AdaGradState,
    cfg: &AdaGradConfig,
) -> f64 {
    assert!(cfg.threads > 0, "thread count must be non-zero");
    if entries.is_empty() {
        return 0.0;
    }
    let threads = cfg.threads.min(entries.len());
    let sweep = |offset: usize| {
        let mut scratch = vec![0f32; 2 * p.k()];
        let mut acc = 0.0f64;
        let mut idx = offset;
        while idx < entries.len() {
            let e = entries[idx];
            let err = adagrad_step(
                p,
                q,
                state,
                e.u as usize,
                e.i as usize,
                e.r,
                cfg,
                &mut scratch,
            );
            acc += (err as f64) * (err as f64);
            idx += threads;
        }
        acc
    };
    if threads == 1 {
        return sweep(0);
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| scope.spawn(move || sweep(t)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .sum()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::rmse;
    use crate::FactorMatrix;
    use hcc_sparse::{GenConfig, SyntheticDataset};

    fn setup() -> (SyntheticDataset, SharedFactors, SharedFactors, AdaGradState) {
        let ds = SyntheticDataset::generate(GenConfig {
            rows: 200,
            cols: 100,
            nnz: 5_000,
            noise: 0.0,
            ..GenConfig::default()
        });
        let p = SharedFactors::from_matrix(&FactorMatrix::random(200, 8, 11));
        let q = SharedFactors::from_matrix(&FactorMatrix::random(100, 8, 12));
        let state = AdaGradState::new(200, 100, 8);
        (ds, p, q, state)
    }

    #[test]
    fn adagrad_converges() {
        let (ds, p, q, state) = setup();
        let cfg = AdaGradConfig {
            threads: 2,
            ..Default::default()
        };
        let before = rmse(ds.matrix.entries(), &p.snapshot(), &q.snapshot());
        for _ in 0..15 {
            adagrad_hogwild_epoch(ds.matrix.entries(), &p, &q, &state, &cfg);
        }
        let after = rmse(ds.matrix.entries(), &p.snapshot(), &q.snapshot());
        assert!(after < before * 0.5, "{before} -> {after}");
    }

    #[test]
    fn adagrad_beats_plain_sgd_in_few_epochs() {
        // With the same (aggressive) base step, plain SGD oscillates where
        // AdaGrad's per-parameter damping keeps progress steady.
        let (ds, p, q, state) = setup();
        let cfg = AdaGradConfig {
            threads: 1,
            eta0: 0.1,
            ..Default::default()
        };
        for _ in 0..5 {
            adagrad_hogwild_epoch(ds.matrix.entries(), &p, &q, &state, &cfg);
        }
        let ada = rmse(ds.matrix.entries(), &p.snapshot(), &q.snapshot());

        let p2 = SharedFactors::from_matrix(&FactorMatrix::random(200, 8, 11));
        let q2 = SharedFactors::from_matrix(&FactorMatrix::random(100, 8, 12));
        let hw = crate::hogwild::HogwildConfig {
            threads: 1,
            learning_rate: 0.1,
            lambda_p: 0.01,
            lambda_q: 0.01,
            schedule: Default::default(),
        };
        for _ in 0..5 {
            crate::hogwild::hogwild_epoch(ds.matrix.entries(), &p2, &q2, &hw);
        }
        let sgd = rmse(ds.matrix.entries(), &p2.snapshot(), &q2.snapshot());
        assert!(ada < sgd, "adagrad {ada} vs sgd {sgd}");
    }

    #[test]
    fn accumulators_grow_monotonically() {
        let (ds, p, q, state) = setup();
        let cfg = AdaGradConfig {
            threads: 1,
            ..Default::default()
        };
        let mut last = 0.0;
        for _ in 0..3 {
            adagrad_hogwild_epoch(ds.matrix.entries(), &p, &q, &state, &cfg);
            let now = state.mean_accum_p();
            assert!(now > last, "accumulator did not grow: {now} <= {last}");
            last = now;
        }
    }

    #[test]
    fn empty_entries_noop() {
        let (_, p, q, state) = setup();
        let cfg = AdaGradConfig::default();
        assert_eq!(adagrad_hogwild_epoch(&[], &p, &q, &state, &cfg), 0.0);
        assert_eq!(state.mean_accum_p(), 0.0);
    }
}
