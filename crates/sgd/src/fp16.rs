//! IEEE-754 binary16 ("FP16") conversion, implemented from scratch.
//!
//! The paper's "Transmitting FP16 Data" strategy compresses the feature
//! matrices to half precision before transfer (§3.4, Strategy 2), using AVX
//! and multi-threading on the CPU side. This module is the Rust analog: a
//! bit-exact scalar codec with round-to-nearest-even, subnormal, infinity
//! and NaN handling, with the bulk slice codecs dispatched through
//! [`crate::simd`] (F16C vector conversion on capable CPUs, this scalar
//! codec otherwise), plus chunked rayon-parallel variants whose chunk size
//! keeps each task in L1.

use rayon::prelude::*;

/// Converts one `f32` to its nearest binary16 bit pattern
/// (round-to-nearest-even; overflow rounds to infinity).
pub fn f32_to_f16(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let man = bits & 0x007f_ffff;

    if exp == 0xff {
        // Infinity or NaN. NaNs keep their payload top bits and always get
        // the quiet bit so a payload of zero can't collapse into infinity.
        return if man == 0 {
            sign | 0x7c00
        } else {
            sign | 0x7e00 | ((man >> 13) as u16)
        };
    }

    let half_exp = exp - 127 + 15;
    if half_exp >= 0x1f {
        // Too large for binary16: round to infinity.
        return sign | 0x7c00;
    }
    if half_exp <= 0 {
        // Subnormal half (or zero). Values below half the smallest
        // subnormal (2^-25) flush to signed zero.
        if half_exp < -10 {
            return sign;
        }
        let man = man | 0x0080_0000; // restore the implicit bit
        let shift = (14 - half_exp) as u32;
        let mut m16 = (man >> shift) as u16;
        let rem = man & ((1u32 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        if rem > halfway || (rem == halfway && (m16 & 1) == 1) {
            m16 += 1; // may carry into the exponent field: that's correct
        }
        return sign | m16;
    }

    // Normal range. Round the 13 dropped mantissa bits to nearest even; a
    // mantissa carry correctly increments the exponent (and can round the
    // largest normals to infinity).
    let mut out = sign | ((half_exp as u16) << 10) | ((man >> 13) as u16);
    let rem = man & 0x1fff;
    if rem > 0x1000 || (rem == 0x1000 && (out & 1) == 1) {
        out += 1;
    }
    out
}

/// Converts a binary16 bit pattern to the exactly-representable `f32`.
pub fn f16_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let man = (h & 0x03ff) as u32;

    if exp == 0 {
        if man == 0 {
            return f32::from_bits(sign); // ±0
        }
        // Subnormal: normalize into f32's much wider exponent range.
        let mut m = man;
        let mut e = 113u32; // exponent as if the implicit bit were at 0x400
        while m & 0x0400 == 0 {
            m <<= 1;
            e -= 1;
        }
        return f32::from_bits(sign | (e << 23) | ((m & 0x03ff) << 13));
    }
    if exp == 0x1f {
        if man == 0 {
            return f32::from_bits(sign | 0x7f80_0000); // ±infinity
        }
        // NaN: shift the payload up and set the quiet bit, exactly as
        // VCVTPH2PS does — signaling NaNs come out quieted, so the scalar
        // and F16C decode paths stay bit-identical.
        return f32::from_bits(sign | 0x7fc0_0000 | (man << 13));
    }
    f32::from_bits(sign | ((exp + 112) << 23) | (man << 13))
}

/// Largest finite binary16 value (2^15 · (2 − 2^-10)).
pub const F16_MAX: f32 = 65504.0;
/// Smallest positive normal binary16 value (2^-14).
pub const F16_MIN_POSITIVE: f32 = 6.103_515_6e-5;

/// Encodes a slice. `dst` must be the same length as `src`.
///
/// Dispatches to the F16C vector codec where the CPU supports it; the result
/// is bit-exact with [`f32_to_f16`] either way (VCVTPS2PH implements the same
/// round-to-nearest-even, subnormal and NaN-quieting behaviour).
///
/// # Panics
/// Panics on length mismatch.
pub fn encode_slice(src: &[f32], dst: &mut [u16]) {
    assert_eq!(src.len(), dst.len(), "encode buffers must match");
    crate::simd::encode_f16(src, dst);
}

/// Decodes a slice. `dst` must be the same length as `src`.
///
/// Dispatches to the F16C vector codec where available; bit-exact with
/// [`f16_to_f32`] either way.
///
/// # Panics
/// Panics on length mismatch.
pub fn decode_slice(src: &[u16], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "decode buffers must match");
    crate::simd::decode_f16(src, dst);
}

/// Chunk size for the parallel codecs: 16 KiB of f32 per task.
const PAR_CHUNK: usize = 4096;

/// Parallel encode (the paper's multi-threaded AVX conversion analog).
pub fn encode_parallel(src: &[f32], dst: &mut [u16]) {
    assert_eq!(src.len(), dst.len(), "encode buffers must match");
    dst.par_chunks_mut(PAR_CHUNK)
        .zip(src.par_chunks(PAR_CHUNK))
        .for_each(|(d, s)| {
            encode_slice(s, d);
        });
}

/// Parallel decode.
pub fn decode_parallel(src: &[u16], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "decode buffers must match");
    dst.par_chunks_mut(PAR_CHUNK)
        .zip(src.par_chunks(PAR_CHUNK))
        .for_each(|(d, s)| {
            decode_slice(s, d);
        });
}

/// Encodes into a fresh vector.
pub fn encode_vec(src: &[f32]) -> Vec<u16> {
    let mut out = vec![0u16; src.len()];
    encode_slice(src, &mut out);
    out
}

/// Decodes into a fresh vector.
pub fn decode_vec(src: &[u16]) -> Vec<f32> {
    let mut out = vec![0f32; src.len()];
    decode_slice(src, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_bit_patterns() {
        assert_eq!(f32_to_f16(0.0), 0x0000);
        assert_eq!(f32_to_f16(-0.0), 0x8000);
        assert_eq!(f32_to_f16(1.0), 0x3c00);
        assert_eq!(f32_to_f16(-1.0), 0xbc00);
        assert_eq!(f32_to_f16(2.0), 0x4000);
        assert_eq!(f32_to_f16(0.5), 0x3800);
        assert_eq!(f32_to_f16(65504.0), 0x7bff); // F16_MAX
        assert_eq!(f32_to_f16(f32::INFINITY), 0x7c00);
        assert_eq!(f32_to_f16(f32::NEG_INFINITY), 0xfc00);
    }

    #[test]
    fn decode_known_patterns() {
        assert_eq!(f16_to_f32(0x3c00), 1.0);
        assert_eq!(f16_to_f32(0xbc00), -1.0);
        assert_eq!(f16_to_f32(0x0000), 0.0);
        assert_eq!(f16_to_f32(0x8000).to_bits(), (-0.0f32).to_bits());
        assert_eq!(f16_to_f32(0x7c00), f32::INFINITY);
        assert_eq!(f16_to_f32(0xfc00), f32::NEG_INFINITY);
        assert_eq!(f16_to_f32(0x7bff), 65504.0);
        // Smallest subnormal: 2^-24.
        assert_eq!(f16_to_f32(0x0001), 2.0f32.powi(-24));
        // Smallest normal: 2^-14.
        assert_eq!(f16_to_f32(0x0400), 2.0f32.powi(-14));
    }

    #[test]
    fn nan_survives_roundtrip() {
        assert!(f16_to_f32(f32_to_f16(f32::NAN)).is_nan());
        // NaN with payload only in low mantissa bits must not become Inf.
        let sneaky = f32::from_bits(0x7f80_0001);
        assert!(sneaky.is_nan());
        assert!(f16_to_f32(f32_to_f16(sneaky)).is_nan());
        let neg_nan = f32::from_bits(0xff80_0001);
        let back = f16_to_f32(f32_to_f16(neg_nan));
        assert!(back.is_nan());
        assert!(back.is_sign_negative());
    }

    #[test]
    fn overflow_rounds_to_infinity() {
        assert_eq!(f32_to_f16(1e6), 0x7c00);
        assert_eq!(f32_to_f16(-1e6), 0xfc00);
        // 65520 is the rounding boundary: ties-to-even sends it to infinity.
        assert_eq!(f32_to_f16(65520.0), 0x7c00);
        // Just below the boundary stays finite.
        assert_eq!(f32_to_f16(65519.0), 0x7bff);
    }

    #[test]
    fn underflow_flushes_to_zero() {
        assert_eq!(f32_to_f16(1e-10), 0x0000);
        assert_eq!(f32_to_f16(-1e-10), 0x8000);
        // Half the smallest subnormal (2^-25) ties to even → zero.
        assert_eq!(f32_to_f16(2.0f32.powi(-25)), 0x0000);
        // Anything above the tie rounds up to the smallest subnormal.
        assert_eq!(f32_to_f16(2.0f32.powi(-25) * 1.5), 0x0001);
    }

    #[test]
    fn subnormal_roundtrips_exactly() {
        for bits in [0x0001u16, 0x0002, 0x01ff, 0x03ff, 0x8001, 0x83ff] {
            assert_eq!(f32_to_f16(f16_to_f32(bits)), bits, "bits {bits:#06x}");
        }
    }

    #[test]
    fn every_f16_value_roundtrips_through_f32() {
        // Exhaustive: all 65536 bit patterns. NaNs compare by NaN-ness.
        for bits in 0..=u16::MAX {
            let x = f16_to_f32(bits);
            let back = f32_to_f16(x);
            if x.is_nan() {
                assert!(f16_to_f32(back).is_nan());
            } else {
                assert_eq!(back, bits, "pattern {bits:#06x} -> {x} -> {back:#06x}");
            }
        }
    }

    #[test]
    fn round_to_nearest_even() {
        // 1.0 + 2^-11 is exactly halfway between 1.0 and the next f16; even
        // mantissa (0) wins → 1.0.
        let halfway = 1.0 + 2.0f32.powi(-11);
        assert_eq!(f32_to_f16(halfway), 0x3c00);
        // 1.0 + 3·2^-11 is halfway between patterns 0x3c01 and 0x3c02; the
        // even one (0x3c02) wins.
        let halfway_up = 1.0 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(f32_to_f16(halfway_up), 0x3c02);
        // Slightly above halfway rounds up.
        assert_eq!(f32_to_f16(halfway + 1e-7), 0x3c01);
    }

    #[test]
    fn relative_error_bound_in_normal_range() {
        let mut x = F16_MIN_POSITIVE;
        while x < F16_MAX / 2.0 {
            let y = f16_to_f32(f32_to_f16(x * 1.37));
            let rel = ((y - x * 1.37) / (x * 1.37)).abs();
            assert!(rel <= 1.0 / 2048.0 + 1e-7, "x {} rel {}", x * 1.37, rel);
            x *= 2.0;
        }
    }

    #[test]
    fn slice_codecs_match_scalar() {
        let src: Vec<f32> = (0..10_000).map(|j| (j as f32 - 5_000.0) * 0.01).collect();
        let enc = encode_vec(&src);
        for (j, &s) in src.iter().enumerate() {
            assert_eq!(enc[j], f32_to_f16(s));
        }
        let dec = decode_vec(&enc);
        let mut enc_par = vec![0u16; src.len()];
        encode_parallel(&src, &mut enc_par);
        assert_eq!(enc, enc_par);
        let mut dec_par = vec![0f32; src.len()];
        decode_parallel(&enc, &mut dec_par);
        assert_eq!(dec, dec_par);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn mismatched_lengths_panic() {
        let mut dst = vec![0u16; 3];
        encode_slice(&[1.0, 2.0], &mut dst);
    }
}
