//! Factor-matrix storage.
//!
//! Two representations:
//!
//! * [`FactorMatrix`] — a plain `Vec<f32>` in row-major order. Used wherever
//!   a single thread owns the data (server-side global `P`/`Q`, pull/push
//!   staging, evaluation).
//! * [`SharedFactors`] — the same layout behind `AtomicU32` bit-cells with
//!   `Relaxed` ordering. Hogwild updates read and write rows concurrently
//!   without synchronization; relaxed atomics make that defined behaviour at
//!   zero cost on x86 (a relaxed atomic load/store compiles to a plain move).
//!   Tearing is impossible per element, and the Hogwild convergence argument
//!   tolerates stale element values.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Dense row-major factor matrix (`rows × k`).
#[derive(Debug, Clone, PartialEq)]
pub struct FactorMatrix {
    rows: usize,
    k: usize,
    data: Vec<f32>,
}

impl FactorMatrix {
    /// Allocates a zeroed matrix.
    pub fn zeros(rows: usize, k: usize) -> Self {
        assert!(k > 0, "latent dimension must be non-zero");
        FactorMatrix {
            rows,
            k,
            data: vec![0.0; rows * k],
        }
    }

    /// Random initialization: uniform in `[0, 1/sqrt(k))`, the scheme used by
    /// FPSGD/CuMF_SGD so initial predictions land near the rating mean.
    pub fn random(rows: usize, k: usize, seed: u64) -> Self {
        assert!(k > 0, "latent dimension must be non-zero");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let scale = 1.0 / (k as f32).sqrt();
        let data = (0..rows * k).map(|_| rng.random::<f32>() * scale).collect();
        FactorMatrix { rows, k, data }
    }

    /// Builds from an existing buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * k`.
    pub fn from_vec(rows: usize, k: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * k, "buffer length must equal rows*k");
        FactorMatrix { rows, k, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Latent dimension `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.k..(r + 1) * self.k]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.k..(r + 1) * self.k]
    }

    /// Two distinct rows mutably at once (for the SGD step on `P` and `Q`
    /// held in one matrix — not used by HCC-MF but handy for tests).
    ///
    /// # Panics
    /// Panics if `a == b`.
    pub fn rows_mut_pair(&mut self, a: usize, b: usize) -> (&mut [f32], &mut [f32]) {
        assert_ne!(a, b, "rows must be distinct");
        let k = self.k;
        if a < b {
            let (lo, hi) = self.data.split_at_mut(b * k);
            (&mut lo[a * k..(a + 1) * k], &mut hi[..k])
        } else {
            let (lo, hi) = self.data.split_at_mut(a * k);
            let b_row = &mut lo[b * k..(b + 1) * k];
            (&mut hi[..k], b_row)
        }
    }

    /// Whole buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Whole buffer, mutable.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes into the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Frobenius norm (for regularization diagnostics).
    pub fn frobenius_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>()
            .sqrt()
    }
}

/// Factor matrix shared across Hogwild threads.
///
/// Cloning is cheap (`Arc`); all clones view the same cells.
#[derive(Debug, Clone)]
pub struct SharedFactors {
    rows: usize,
    k: usize,
    data: Arc<[AtomicU32]>,
}

impl SharedFactors {
    /// Allocates zeroed shared storage.
    pub fn zeros(rows: usize, k: usize) -> Self {
        assert!(k > 0, "latent dimension must be non-zero");
        let data: Arc<[AtomicU32]> = (0..rows * k)
            .map(|_| AtomicU32::new(0f32.to_bits()))
            .collect();
        SharedFactors { rows, k, data }
    }

    /// Copies a plain matrix into shared storage.
    pub fn from_matrix(m: &FactorMatrix) -> Self {
        let data: Arc<[AtomicU32]> = m
            .as_slice()
            .iter()
            .map(|&v| AtomicU32::new(v.to_bits()))
            .collect();
        SharedFactors {
            rows: m.rows(),
            k: m.k(),
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Latent dimension.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Loads element `(row, j)`.
    #[inline]
    pub fn load(&self, row: usize, j: usize) -> f32 {
        // ordering: Relaxed — Hogwild cells carry no cross-cell ordering;
        // each load only needs the cell's own atomicity (no torn reads).
        // Cross-thread publication happens at epoch boundaries via the
        // training scope's join, not through these accesses.
        f32::from_bits(self.data[row * self.k + j].load(Ordering::Relaxed))
    }

    /// Stores element `(row, j)`.
    #[inline]
    pub fn store(&self, row: usize, j: usize, v: f32) {
        // ordering: Relaxed — see `load`; stores publish nothing beyond the
        // cell itself, staleness is tolerated by the Hogwild convergence
        // argument (Niu et al.).
        self.data[row * self.k + j].store(v.to_bits(), Ordering::Relaxed);
    }

    /// Copies row `row` into `buf` (length `k`).
    #[inline]
    pub fn load_row_into(&self, row: usize, buf: &mut [f32]) {
        debug_assert_eq!(buf.len(), self.k);
        let base = row * self.k;
        for (j, slot) in buf.iter_mut().enumerate() {
            // ordering: Relaxed — per-cell atomicity only (see `load`).
            *slot = f32::from_bits(self.data[base + j].load(Ordering::Relaxed));
        }
    }

    /// Stores `buf` (length `k`) into row `row`.
    #[inline]
    pub fn store_row(&self, row: usize, buf: &[f32]) {
        debug_assert_eq!(buf.len(), self.k);
        let base = row * self.k;
        for (j, &v) in buf.iter().enumerate() {
            // ordering: Relaxed — per-cell atomicity only (see `store`).
            self.data[base + j].store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// The raw atomic cells of row `row` (used by the hot SGD kernel).
    #[inline]
    pub fn row_cells(&self, row: usize) -> &[AtomicU32] {
        &self.data[row * self.k..(row + 1) * self.k]
    }

    /// Snapshots the whole matrix into a plain `FactorMatrix`.
    pub fn snapshot(&self) -> FactorMatrix {
        // ordering: Relaxed — callers snapshot after the writing scope has
        // joined (a happens-before edge), so Relaxed already observes the
        // final values; mid-epoch snapshots are by-design fuzzy.
        let data: Vec<f32> = self
            .data
            .iter()
            .map(|c| f32::from_bits(c.load(Ordering::Relaxed)))
            .collect();
        FactorMatrix::from_vec(self.rows, self.k, data)
    }

    /// Overwrites the whole matrix from a plain one (dimensions must match).
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn copy_from(&self, m: &FactorMatrix) {
        assert_eq!(m.rows(), self.rows, "row mismatch");
        assert_eq!(m.k(), self.k, "k mismatch");
        for (cell, &v) in self.data.iter().zip(m.as_slice()) {
            // ordering: Relaxed — bulk overwrite runs outside the worker
            // scope; the next scope's spawn edge publishes it.
            cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Overwrites rows `lo..hi` from a packed slice of `(hi-lo)*k` floats.
    pub fn copy_rows_from_slice(&self, lo: usize, hi: usize, src: &[f32]) {
        assert!(lo <= hi && hi <= self.rows, "row range out of bounds");
        assert_eq!(src.len(), (hi - lo) * self.k, "source length mismatch");
        let base = lo * self.k;
        for (off, &v) in src.iter().enumerate() {
            // ordering: Relaxed — single-writer row range during pull; the
            // scope join publishes the rows to the merging thread.
            self.data[base + off].store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Reads rows `lo..hi` into a packed vector of `(hi-lo)*k` floats.
    pub fn snapshot_rows(&self, lo: usize, hi: usize) -> Vec<f32> {
        assert!(lo <= hi && hi <= self.rows, "row range out of bounds");
        let base = lo * self.k;
        // ordering: Relaxed — see `snapshot`; row reads need no ordering
        // beyond per-cell atomicity.
        (0..(hi - lo) * self.k)
            .map(|off| f32::from_bits(self.data[base + off].load(Ordering::Relaxed)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_dims() {
        let m = FactorMatrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.k(), 4);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn random_is_deterministic_and_scaled() {
        let a = FactorMatrix::random(10, 16, 7);
        let b = FactorMatrix::random(10, 16, 7);
        assert_eq!(a, b);
        let bound = 1.0 / 4.0; // 1/sqrt(16)
        assert!(a.as_slice().iter().all(|&v| (0.0..bound).contains(&v)));
        let c = FactorMatrix::random(10, 16, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn row_access() {
        let mut m = FactorMatrix::zeros(2, 3);
        m.row_mut(1).copy_from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(0), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn rows_mut_pair_disjoint() {
        let mut m = FactorMatrix::zeros(3, 2);
        {
            let (a, b) = m.rows_mut_pair(0, 2);
            a[0] = 1.0;
            b[1] = 2.0;
        }
        assert_eq!(m.row(0), &[1.0, 0.0]);
        assert_eq!(m.row(2), &[0.0, 2.0]);
        // Reversed order works too.
        let (a, b) = m.rows_mut_pair(2, 0);
        assert_eq!(b[0], 1.0);
        assert_eq!(a[1], 2.0);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn rows_mut_pair_same_row_panics() {
        let mut m = FactorMatrix::zeros(2, 2);
        let _ = m.rows_mut_pair(1, 1);
    }

    #[test]
    fn shared_roundtrip() {
        let m = FactorMatrix::random(4, 3, 1);
        let s = SharedFactors::from_matrix(&m);
        assert_eq!(s.snapshot(), m);
        s.store(2, 1, 42.0);
        assert_eq!(s.load(2, 1), 42.0);
        assert_ne!(s.snapshot(), m);
    }

    #[test]
    fn shared_row_io() {
        let s = SharedFactors::zeros(3, 4);
        s.store_row(1, &[1.0, 2.0, 3.0, 4.0]);
        let mut buf = [0f32; 4];
        s.load_row_into(1, &mut buf);
        assert_eq!(buf, [1.0, 2.0, 3.0, 4.0]);
        s.load_row_into(0, &mut buf);
        assert_eq!(buf, [0.0; 4]);
    }

    #[test]
    fn shared_region_io() {
        let s = SharedFactors::zeros(4, 2);
        s.copy_rows_from_slice(1, 3, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.snapshot_rows(1, 3), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.snapshot_rows(0, 1), vec![0.0, 0.0]);
        assert_eq!(s.snapshot_rows(2, 2), Vec::<f32>::new());
    }

    #[test]
    fn shared_clones_alias() {
        let s = SharedFactors::zeros(1, 1);
        let t = s.clone();
        s.store(0, 0, 5.0);
        assert_eq!(t.load(0, 0), 5.0);
    }

    #[test]
    fn copy_from_overwrites() {
        let s = SharedFactors::zeros(2, 2);
        let m = FactorMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        s.copy_from(&m);
        assert_eq!(s.snapshot(), m);
    }

    #[test]
    fn frobenius_norm() {
        let m = FactorMatrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }
}
