//! SGD kernels and numeric substrate for HCC-MF.
//!
//! This crate holds everything that touches feature-matrix numbers:
//!
//! * [`FactorMatrix`] — plain row-major `rows × k` factor storage, and
//!   [`SharedFactors`] — the same data behind relaxed atomics so Hogwild-style
//!   asynchronous SGD (Niu et al., the paper's convergence basis) can update
//!   it from many threads without locks.
//! * [`kernel`] — the single-rating SGD update rule with L2 regularization,
//!   exactly the loss in Fig. 1 of the paper.
//! * [`hogwild`] — multi-threaded asynchronous SGD over an entry shard; this
//!   is the compute engine inside every CPU worker.
//! * [`loss`] — RMSE evaluation (serial and parallel).
//! * [`schedule`] — learning-rate schedules (the paper uses a constant γ).
//! * [`fp16`] — IEEE-754 binary16 conversion implemented from scratch, used
//!   by the "Transmitting FP16 Data" communication strategy.
//! * [`int8`] — symmetric per-shard int8 quantization for the serving tier
//!   (`hcc-serve` stores item factors at reduced precision).
//! * [`biased`] — the biased-MF extension `μ + b_u + c_i + p·q`, the
//!   standard production refinement of the paper's plain model.
//! * [`adagrad`] — AdaGrad-scaled Hogwild (CuMF_SGD ships the same
//!   alternative kernel).
//! * [`momentum`] — heavy-ball Hogwild, completing the optimizer family.
//! * [`simd`] — runtime-dispatched SIMD kernels (AVX2+FMA fused SGD step,
//!   F16C half-precision codec) with portable scalar fallbacks.

//!
//! ```
//! use hcc_sgd::{hogwild_epoch, FactorMatrix, HogwildConfig, SharedFactors, rmse};
//! use hcc_sparse::{GenConfig, SyntheticDataset};
//!
//! let ds = SyntheticDataset::generate(GenConfig {
//!     rows: 50, cols: 30, nnz: 500, noise: 0.0, ..GenConfig::default()
//! });
//! let p = SharedFactors::from_matrix(&FactorMatrix::random(50, 8, 1));
//! let q = SharedFactors::from_matrix(&FactorMatrix::random(30, 8, 2));
//! let cfg = HogwildConfig {
//!     threads: 2, learning_rate: 0.02, lambda_p: 0.01, lambda_q: 0.01,
//!     schedule: Default::default(),
//! };
//! let before = rmse(ds.matrix.entries(), &p.snapshot(), &q.snapshot());
//! for _ in 0..10 { hogwild_epoch(ds.matrix.entries(), &p, &q, &cfg); }
//! assert!(rmse(ds.matrix.entries(), &p.snapshot(), &q.snapshot()) < before);
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod adagrad;
pub mod biased;
pub mod factors;
pub mod fp16;
pub mod hogwild;
pub mod int8;
pub mod kernel;
pub mod loss;
pub mod momentum;
pub mod schedule;
pub mod simd;

pub use adagrad::{adagrad_hogwild_epoch, AdaGradConfig, AdaGradState};
pub use biased::{biased_hogwild_epoch, train_biased, BiasedConfig, BiasedModel, SharedBias};
pub use factors::{FactorMatrix, SharedFactors};
pub use hogwild::{hogwild_epoch, hogwild_epoch_tiled, HogwildConfig, Schedule};
pub use kernel::{dot, dot_unrolled, sgd_step};
pub use loss::{rmse, rmse_parallel};
pub use momentum::{momentum_hogwild_epoch, MomentumConfig, MomentumState};
pub use schedule::LearningRate;
