//! Learning-rate schedules.
//!
//! The paper trains with a constant γ = 0.005 (Table 3). Constant is the
//! default; inverse-time and exponential decay are provided because FPSGD's
//! reference implementation supports them and the ablation benches sweep
//! them.

/// A learning-rate schedule evaluated per epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LearningRate {
    /// γ(t) = γ0 for all epochs (the paper's setting).
    Constant(f32),
    /// γ(t) = γ0 / (1 + decay·t).
    InverseTime { gamma0: f32, decay: f32 },
    /// γ(t) = γ0 · ratio^t.
    Exponential { gamma0: f32, ratio: f32 },
}

impl LearningRate {
    /// The rate for epoch `t` (0-based).
    pub fn at(&self, epoch: usize) -> f32 {
        match *self {
            LearningRate::Constant(g) => g,
            LearningRate::InverseTime { gamma0, decay } => gamma0 / (1.0 + decay * epoch as f32),
            LearningRate::Exponential { gamma0, ratio } => gamma0 * ratio.powi(epoch as i32),
        }
    }

    /// The paper's default: constant 0.005.
    pub fn paper_default() -> Self {
        LearningRate::Constant(0.005)
    }
}

impl Default for LearningRate {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_never_changes() {
        let lr = LearningRate::Constant(0.01);
        assert_eq!(lr.at(0), 0.01);
        assert_eq!(lr.at(1_000), 0.01);
    }

    #[test]
    fn inverse_time_decays() {
        let lr = LearningRate::InverseTime {
            gamma0: 0.1,
            decay: 1.0,
        };
        assert_eq!(lr.at(0), 0.1);
        assert!((lr.at(1) - 0.05).abs() < 1e-9);
        assert!(lr.at(9) < lr.at(8));
    }

    #[test]
    fn exponential_decays_geometrically() {
        let lr = LearningRate::Exponential {
            gamma0: 0.1,
            ratio: 0.5,
        };
        assert_eq!(lr.at(0), 0.1);
        assert!((lr.at(2) - 0.025).abs() < 1e-9);
    }

    #[test]
    fn default_is_paper_value() {
        assert_eq!(LearningRate::default(), LearningRate::Constant(0.005));
    }
}
