//! Symmetric int8 quantization for serving-side factor storage.
//!
//! The serving path stores item factors at reduced precision to cut memory
//! bandwidth (CuMF_SGD makes the same argument for half-precision factor
//! traffic). This module is the int8 tier: a *per-shard* scale maps f32
//! values into `[-127, 127]` symmetrically, so a dot product of two
//! quantized rows is an integer multiply-accumulate rescaled by the product
//! of the two scales:
//!
//! ```text
//! scale = max|x| / 127
//! q(x)  = round(x / scale) clamped to [-127, 127]
//! x̂     = q(x) * scale            (|x − x̂| ≤ scale/2 for in-range x)
//! a·b  ≈ scale_a * scale_b * Σ qa[j]*qb[j]
//! ```
//!
//! The integer accumulation is exact (i32 cannot overflow for any realistic
//! `k`: each product is ≤ 127² = 16129, so overflow needs k > 133 000), so
//! scalar and AVX2 backends agree **bit-exactly** on the integer dot — the
//! only approximation in the pipeline is the quantization itself, which the
//! round-trip proptests bound by `scale/2` per element.

/// The symmetric quantization range: values map to `[-Q_MAX, Q_MAX]`.
/// `-128` is deliberately unused so the range is symmetric and `-x`
/// quantizes to `-q(x)` exactly.
pub const Q_MAX: i32 = 127;

/// Per-slice symmetric scale: `max|x| / 127`, or `1.0` for an all-zero (or
/// empty) slice so dequantization never divides by zero. Non-finite inputs
/// are the caller's bug; the scale of an infinite slice is infinite and the
/// round-trip bound does not apply.
pub fn scale_for(src: &[f32]) -> f32 {
    let max_abs = src.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
    if max_abs > 0.0 {
        max_abs / Q_MAX as f32
    } else {
        1.0
    }
}

/// Quantizes `src` into `dst` with the given scale: round-to-nearest, then
/// clamp to `[-127, 127]`. With `scale = scale_for(src)` every value is in
/// range before clamping, which is what gives the `|x − x̂| ≤ scale/2`
/// round-trip bound.
///
/// # Panics
/// Panics on length mismatch.
pub fn quantize(src: &[f32], scale: f32, dst: &mut [i8]) {
    assert_eq!(src.len(), dst.len(), "quantize buffers must match");
    let inv = 1.0 / scale;
    for (d, &x) in dst.iter_mut().zip(src) {
        *d = (x * inv).round().clamp(-(Q_MAX as f32), Q_MAX as f32) as i8;
    }
}

/// Dequantizes `src` into `dst`: `x̂ = q * scale`.
///
/// # Panics
/// Panics on length mismatch.
pub fn dequantize(src: &[i8], scale: f32, dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "dequantize buffers must match");
    for (d, &q) in dst.iter_mut().zip(src) {
        *d = q as f32 * scale;
    }
}

/// Scalar reference integer dot product; the AVX2 kernel in
/// [`crate::simd`] must agree bit-exactly (integer arithmetic).
#[inline]
pub fn dot_i8_scalar(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0i32;
    for (&x, &y) in a.iter().zip(b.iter()) {
        acc += x as i32 * y as i32;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_of_zero_slice_is_one_and_roundtrip_is_exact() {
        assert_eq!(scale_for(&[]), 1.0);
        assert_eq!(scale_for(&[0.0, -0.0]), 1.0);
        let src = [0.0f32, 0.0];
        let mut q = [0i8; 2];
        quantize(&src, scale_for(&src), &mut q);
        assert_eq!(q, [0, 0]);
    }

    #[test]
    fn extremes_hit_full_range_symmetrically() {
        let src = [3.5f32, -3.5, 0.0, 1.75];
        let scale = scale_for(&src);
        let mut q = [0i8; 4];
        quantize(&src, scale, &mut q);
        assert_eq!(q[0], 127);
        assert_eq!(q[1], -127);
        assert_eq!(q[2], 0);
        // 1.75 = half of max → 63.5 rounds to 64 (round half away from zero).
        assert_eq!(q[3], 64);
    }

    #[test]
    fn roundtrip_error_bounded_by_half_scale() {
        let src: Vec<f32> = (0..257)
            .map(|j| ((j * 37 + 11) as f32 * 0.37).sin() * 2.5)
            .collect();
        let scale = scale_for(&src);
        let mut q = vec![0i8; src.len()];
        quantize(&src, scale, &mut q);
        let mut back = vec![0.0f32; src.len()];
        dequantize(&q, scale, &mut back);
        for (j, (&x, &x2)) in src.iter().zip(back.iter()).enumerate() {
            assert!(
                (x - x2).abs() <= scale / 2.0 + 1e-7,
                "elem {j}: {x} vs {x2} (scale {scale})"
            );
        }
    }

    #[test]
    fn quantized_dot_tracks_f32_dot() {
        let a: Vec<f32> = (0..64)
            .map(|j| ((j * 13 + 5) as f32 * 0.11).sin())
            .collect();
        let b: Vec<f32> = (0..64)
            .map(|j| ((j * 29 + 3) as f32 * 0.07).cos())
            .collect();
        let (sa, sb) = (scale_for(&a), scale_for(&b));
        let mut qa = vec![0i8; 64];
        let mut qb = vec![0i8; 64];
        quantize(&a, sa, &mut qa);
        quantize(&b, sb, &mut qb);
        let approx = sa * sb * dot_i8_scalar(&qa, &qb) as f32;
        let exact: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        // Error per term ≤ sa/2·|b| + sb/2·|a| + sa·sb/4; loose bound below.
        assert!(
            (approx - exact).abs() < 64.0 * (sa + sb),
            "approx {approx} vs exact {exact}"
        );
    }
}
