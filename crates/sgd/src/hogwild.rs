//! Hogwild-style asynchronous parallel SGD over an entry shard.
//!
//! This is the compute engine inside each HCC-MF CPU worker (framework step
//! ⑥): `threads` OS threads sweep disjoint stripes of the shard, updating the
//! shared local factor matrices without locks. Races on hot rows are benign
//! per Hogwild's analysis (sparse data ⇒ rare conflicts ⇒ convergence holds),
//! which is exactly the argument the paper leans on in §2.1 and §4.2.

use crate::factors::SharedFactors;
use crate::kernel::sgd_step_shared;
use hcc_sparse::Rating;

/// Configuration for one Hogwild epoch.
#[derive(Debug, Clone, Copy)]
pub struct HogwildConfig {
    /// Worker threads to spawn (1 = serial, still through the shared path).
    pub threads: usize,
    /// Learning rate γ for this epoch.
    pub learning_rate: f32,
    /// L2 regularization on `P` (λ1).
    pub lambda_p: f32,
    /// L2 regularization on `Q` (λ2).
    pub lambda_q: f32,
}

impl HogwildConfig {
    /// Config with the paper's defaults (γ = 0.005) and a given thread count.
    pub fn with_threads(threads: usize, lambda: f32) -> Self {
        HogwildConfig { threads, learning_rate: 0.005, lambda_p: lambda, lambda_q: lambda }
    }
}

/// Runs one asynchronous epoch over `entries`, updating `p` and `q` in place.
///
/// Entries are processed in stripes: thread `t` handles
/// `entries[t], entries[t + threads], …`. Striping (rather than chunking)
/// interleaves hot head-of-file rows across threads, which matters after the
/// preprocessing shuffle has already randomized order.
///
/// Returns the summed squared prediction error observed during the sweep
/// (errors are measured *before* each update, so this is a running training
/// loss, not a post-epoch loss).
///
/// # Panics
/// Panics if `config.threads == 0` or if an entry indexes outside `p`/`q`.
pub fn hogwild_epoch(
    entries: &[Rating],
    p: &SharedFactors,
    q: &SharedFactors,
    config: &HogwildConfig,
) -> f64 {
    assert!(config.threads > 0, "thread count must be non-zero");
    let k = p.k();
    assert_eq!(q.k(), k, "P and Q must share latent dimension");

    if entries.is_empty() {
        return 0.0;
    }

    let threads = config.threads.min(entries.len());
    if threads == 1 {
        return sweep_stripe(entries, 0, 1, p, q, config);
    }

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let p = p.clone();
            let q = q.clone();
            handles.push(scope.spawn(move || sweep_stripe(entries, t, threads, &p, &q, config)));
        }
        handles.into_iter().map(|h| h.join().expect("hogwild thread panicked")).sum()
    })
}

fn sweep_stripe(
    entries: &[Rating],
    offset: usize,
    stride: usize,
    p: &SharedFactors,
    q: &SharedFactors,
    config: &HogwildConfig,
) -> f64 {
    let k = p.k();
    let mut scratch = vec![0f32; 2 * k];
    let mut sq_err = 0.0f64;
    let mut idx = offset;
    while idx < entries.len() {
        let e = entries[idx];
        let err = sgd_step_shared(
            p,
            q,
            e.u as usize,
            e.i as usize,
            e.r,
            config.learning_rate,
            config.lambda_p,
            config.lambda_q,
            &mut scratch,
        );
        sq_err += (err as f64) * (err as f64);
        idx += stride;
    }
    sq_err
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factors::FactorMatrix;
    use crate::loss::rmse;
    use hcc_sparse::{GenConfig, SyntheticDataset};

    fn setup(k: usize) -> (SyntheticDataset, SharedFactors, SharedFactors) {
        let ds = SyntheticDataset::generate(GenConfig {
            rows: 200,
            cols: 100,
            nnz: 5_000,
            noise: 0.0,
            ..GenConfig::default()
        });
        let p = SharedFactors::from_matrix(&FactorMatrix::random(200, k, 11));
        let q = SharedFactors::from_matrix(&FactorMatrix::random(100, k, 12));
        (ds, p, q)
    }

    #[test]
    fn single_thread_epoch_reduces_rmse() {
        let (ds, p, q) = setup(8);
        let cfg = HogwildConfig { threads: 1, learning_rate: 0.02, lambda_p: 0.01, lambda_q: 0.01 };
        let before = rmse(ds.matrix.entries(), &p.snapshot(), &q.snapshot());
        for _ in 0..15 {
            hogwild_epoch(ds.matrix.entries(), &p, &q, &cfg);
        }
        let after = rmse(ds.matrix.entries(), &p.snapshot(), &q.snapshot());
        assert!(after < before * 0.5, "rmse {before} -> {after}");
    }

    #[test]
    fn multi_thread_epoch_converges_too() {
        let (ds, p, q) = setup(8);
        let cfg = HogwildConfig { threads: 4, learning_rate: 0.02, lambda_p: 0.01, lambda_q: 0.01 };
        let before = rmse(ds.matrix.entries(), &p.snapshot(), &q.snapshot());
        for _ in 0..15 {
            hogwild_epoch(ds.matrix.entries(), &p, &q, &cfg);
        }
        let after = rmse(ds.matrix.entries(), &p.snapshot(), &q.snapshot());
        assert!(after < before * 0.5, "rmse {before} -> {after}");
    }

    #[test]
    fn empty_shard_is_noop() {
        let (_, p, q) = setup(4);
        let snap = p.snapshot();
        let cfg = HogwildConfig::with_threads(4, 0.01);
        let loss = hogwild_epoch(&[], &p, &q, &cfg);
        assert_eq!(loss, 0.0);
        assert_eq!(p.snapshot(), snap);
    }

    #[test]
    fn more_threads_than_entries_is_fine() {
        let (ds, p, q) = setup(4);
        let few = &ds.matrix.entries()[..3];
        let cfg = HogwildConfig::with_threads(16, 0.01);
        let loss = hogwild_epoch(few, &p, &q, &cfg);
        assert!(loss.is_finite());
    }

    #[test]
    fn returned_loss_is_sum_of_squared_errors_single_thread() {
        let (ds, p, q) = setup(4);
        let entries = &ds.matrix.entries()[..10];
        // Compute expected running loss with an independent serial replay.
        let p2 = SharedFactors::from_matrix(&p.snapshot());
        let q2 = SharedFactors::from_matrix(&q.snapshot());
        let cfg = HogwildConfig { threads: 1, learning_rate: 0.01, lambda_p: 0.0, lambda_q: 0.0 };
        let got = hogwild_epoch(entries, &p, &q, &cfg);
        let mut scratch = vec![0f32; 8];
        let mut want = 0.0f64;
        for e in entries {
            let err = crate::kernel::sgd_step_shared(
                &p2, &q2, e.u as usize, e.i as usize, e.r, 0.01, 0.0, 0.0, &mut scratch,
            );
            want += (err as f64) * (err as f64);
        }
        assert!((got - want).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "thread count")]
    fn zero_threads_panics() {
        let (ds, p, q) = setup(4);
        let cfg = HogwildConfig { threads: 0, learning_rate: 0.01, lambda_p: 0.0, lambda_q: 0.0 };
        hogwild_epoch(ds.matrix.entries(), &p, &q, &cfg);
    }
}
