//! Hogwild-style asynchronous parallel SGD over an entry shard.
//!
//! This is the compute engine inside each HCC-MF CPU worker (framework step
//! ⑥): `threads` OS threads sweep the shard, updating the shared local factor
//! matrices without locks. Races on hot rows are benign per Hogwild's
//! analysis (sparse data ⇒ rare conflicts ⇒ convergence holds), which is
//! exactly the argument the paper leans on in §2.1 and §4.2.
//!
//! Two schedules decide *which* entries a thread sweeps:
//!
//! * [`Schedule::Stripe`] — thread `t` handles `entries[t], entries[t +
//!   threads], …` in shuffled arrival order. Maximally decorrelated, but at
//!   `k = 128` every update touches two ~512 B factor rows at effectively
//!   random addresses, so both rows miss L2 almost every step.
//! * [`Schedule::Tiled`] — the shard is pre-bucketed into L2-sized
//!   `u_block × i_block` tiles ([`hcc_sparse::TileGrid`]) and threads claim
//!   whole tiles from a shared atomic cursor. All factor rows a tile touches
//!   fit in cache, so each row is reused for every rating in the tile.
//!   Convergence is unaffected: order within a tile stays shuffled, and
//!   Hogwild tolerates any visiting order.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::factors::SharedFactors;
use crate::kernel::sgd_step_shared;
use hcc_sparse::{Rating, TileGrid};

/// Which entry-to-thread assignment [`hogwild_epoch`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Schedule {
    /// Interleaved striping over the shuffled entry list (the classic
    /// Hogwild layout; the seed's only behaviour).
    #[default]
    Stripe,
    /// Cache-tiled: threads claim whole L2-sized tiles of the rating matrix.
    Tiled,
}

impl Schedule {
    /// CLI-facing name (`stripe` | `tiled`).
    pub fn name(self) -> &'static str {
        match self {
            Schedule::Stripe => "stripe",
            Schedule::Tiled => "tiled",
        }
    }
}

impl std::str::FromStr for Schedule {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "stripe" => Ok(Schedule::Stripe),
            "tiled" => Ok(Schedule::Tiled),
            other => Err(format!(
                "unknown schedule '{other}' (expected 'stripe' or 'tiled')"
            )),
        }
    }
}

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration for one Hogwild epoch.
#[derive(Debug, Clone, Copy)]
pub struct HogwildConfig {
    /// Worker threads to spawn (1 = serial, still through the shared path).
    pub threads: usize,
    /// Learning rate γ for this epoch.
    pub learning_rate: f32,
    /// L2 regularization on `P` (λ1).
    pub lambda_p: f32,
    /// L2 regularization on `Q` (λ2).
    pub lambda_q: f32,
    /// Entry-to-thread assignment.
    pub schedule: Schedule,
}

impl HogwildConfig {
    /// Config with the paper's defaults (γ = 0.005, striped) and a given
    /// thread count.
    pub fn with_threads(threads: usize, lambda: f32) -> Self {
        HogwildConfig {
            threads,
            learning_rate: 0.005,
            lambda_p: lambda,
            lambda_q: lambda,
            schedule: Schedule::Stripe,
        }
    }
}

/// Runs one asynchronous epoch over `entries`, updating `p` and `q` in place.
///
/// With [`Schedule::Stripe`], entries are processed in stripes: thread `t`
/// handles `entries[t], entries[t + threads], …`. Striping (rather than
/// chunking) interleaves hot head-of-file rows across threads, which matters
/// after the preprocessing shuffle has already randomized order. With
/// [`Schedule::Tiled`], a [`TileGrid`] is built for the shard (one `O(nnz)`
/// counting sort) and threads claim whole tiles; callers that run many epochs
/// over the same shard should build the grid once and use
/// [`hogwild_epoch_tiled`] instead.
///
/// Returns the summed squared prediction error observed during the sweep
/// (errors are measured *before* each update, so this is a running training
/// loss, not a post-epoch loss).
///
/// # Panics
/// Panics if `config.threads == 0` or if an entry indexes outside `p`/`q`.
pub fn hogwild_epoch(
    entries: &[Rating],
    p: &SharedFactors,
    q: &SharedFactors,
    config: &HogwildConfig,
) -> f64 {
    assert!(config.threads > 0, "thread count must be non-zero");
    let k = p.k();
    assert_eq!(q.k(), k, "P and Q must share latent dimension");

    if entries.is_empty() {
        return 0.0;
    }

    match config.schedule {
        Schedule::Stripe => {
            let threads = config.threads.min(entries.len());
            if threads == 1 {
                return sweep_stripe(entries, 0, 1, p, q, config);
            }
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(threads);
                for t in 0..threads {
                    let p = p.clone();
                    let q = q.clone();
                    handles.push(
                        scope.spawn(move || sweep_stripe(entries, t, threads, &p, &q, config)),
                    );
                }
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                    .sum()
            })
        }
        Schedule::Tiled => {
            let grid = TileGrid::with_default_budget(entries, p.rows(), q.rows(), k);
            hogwild_epoch_tiled(&grid, p, q, config)
        }
    }
}

/// Tile-scheduled epoch over a pre-built [`TileGrid`]; the fast path when the
/// same shard is swept many times (training loops, benchmarks), since the
/// per-epoch counting sort in [`hogwild_epoch`] is skipped.
///
/// Threads claim tiles from a shared atomic cursor, so tile load imbalance
/// (Zipf-skewed shards concentrate mass in few tiles) self-levels the way
/// work stealing does.
///
/// # Panics
/// Panics if `config.threads == 0` or if a tile entry indexes outside `p`/`q`.
pub fn hogwild_epoch_tiled(
    grid: &TileGrid,
    p: &SharedFactors,
    q: &SharedFactors,
    config: &HogwildConfig,
) -> f64 {
    assert!(config.threads > 0, "thread count must be non-zero");
    let k = p.k();
    assert_eq!(q.k(), k, "P and Q must share latent dimension");

    if grid.is_empty() {
        return 0.0;
    }

    let threads = config.threads.min(grid.num_tiles());
    let cursor = AtomicUsize::new(0);
    if threads == 1 {
        return sweep_tiles(grid, &cursor, p, q, config);
    }

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let p = p.clone();
            let q = q.clone();
            let cursor = &cursor;
            handles.push(scope.spawn(move || sweep_tiles(grid, cursor, &p, &q, config)));
        }
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .sum()
    })
}

fn sweep_stripe(
    entries: &[Rating],
    offset: usize,
    stride: usize,
    p: &SharedFactors,
    q: &SharedFactors,
    config: &HogwildConfig,
) -> f64 {
    let mut sq_err = 0.0f64;
    let mut idx = offset;
    while idx < entries.len() {
        let e = entries[idx];
        let err = sgd_step_shared(
            p,
            q,
            e.u as usize,
            e.i as usize,
            e.r,
            config.learning_rate,
            config.lambda_p,
            config.lambda_q,
        );
        sq_err += (err as f64) * (err as f64);
        idx += stride;
    }
    sq_err
}

fn sweep_tiles(
    grid: &TileGrid,
    cursor: &AtomicUsize,
    p: &SharedFactors,
    q: &SharedFactors,
    config: &HogwildConfig,
) -> f64 {
    let mut sq_err = 0.0f64;
    loop {
        // ordering: Relaxed — work-stealing tile cursor: the RMW's own
        // atomicity already hands each tile index to exactly one worker;
        // tile entries are immutable shared data published by the spawn
        // edge, so no extra ordering is needed.
        let t = cursor.fetch_add(1, Ordering::Relaxed);
        if t >= grid.num_tiles() {
            return sq_err;
        }
        for e in grid.tile(t) {
            let err = sgd_step_shared(
                p,
                q,
                e.u as usize,
                e.i as usize,
                e.r,
                config.learning_rate,
                config.lambda_p,
                config.lambda_q,
            );
            sq_err += (err as f64) * (err as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factors::FactorMatrix;
    use crate::loss::rmse;
    use hcc_sparse::{GenConfig, SyntheticDataset};

    fn setup(k: usize) -> (SyntheticDataset, SharedFactors, SharedFactors) {
        let ds = SyntheticDataset::generate(GenConfig {
            rows: 200,
            cols: 100,
            nnz: 5_000,
            noise: 0.0,
            ..GenConfig::default()
        });
        let p = SharedFactors::from_matrix(&FactorMatrix::random(200, k, 11));
        let q = SharedFactors::from_matrix(&FactorMatrix::random(100, k, 12));
        (ds, p, q)
    }

    fn cfg(threads: usize, schedule: Schedule) -> HogwildConfig {
        HogwildConfig {
            threads,
            learning_rate: 0.02,
            lambda_p: 0.01,
            lambda_q: 0.01,
            schedule,
        }
    }

    #[test]
    fn single_thread_epoch_reduces_rmse() {
        let (ds, p, q) = setup(8);
        let cfg = cfg(1, Schedule::Stripe);
        let before = rmse(ds.matrix.entries(), &p.snapshot(), &q.snapshot());
        for _ in 0..15 {
            hogwild_epoch(ds.matrix.entries(), &p, &q, &cfg);
        }
        let after = rmse(ds.matrix.entries(), &p.snapshot(), &q.snapshot());
        assert!(after < before * 0.5, "rmse {before} -> {after}");
    }

    #[test]
    fn multi_thread_epoch_converges_too() {
        let (ds, p, q) = setup(8);
        let cfg = cfg(4, Schedule::Stripe);
        let before = rmse(ds.matrix.entries(), &p.snapshot(), &q.snapshot());
        for _ in 0..15 {
            hogwild_epoch(ds.matrix.entries(), &p, &q, &cfg);
        }
        let after = rmse(ds.matrix.entries(), &p.snapshot(), &q.snapshot());
        assert!(after < before * 0.5, "rmse {before} -> {after}");
    }

    #[test]
    fn tiled_schedule_reaches_same_rmse_band_as_striping() {
        // Convergence parity: same data, same inits, 15 epochs each way.
        let (ds, p_s, q_s) = setup(8);
        let (_, p_t, q_t) = setup(8);
        for _ in 0..15 {
            hogwild_epoch(ds.matrix.entries(), &p_s, &q_s, &cfg(4, Schedule::Stripe));
            hogwild_epoch(ds.matrix.entries(), &p_t, &q_t, &cfg(4, Schedule::Tiled));
        }
        let rmse_stripe = rmse(ds.matrix.entries(), &p_s.snapshot(), &q_s.snapshot());
        let rmse_tiled = rmse(ds.matrix.entries(), &p_t.snapshot(), &q_t.snapshot());
        // Both must have converged hard, and land in the same band (±25%).
        assert!(
            rmse_stripe < 0.5,
            "stripe failed to converge: {rmse_stripe}"
        );
        assert!(rmse_tiled < 0.5, "tiled failed to converge: {rmse_tiled}");
        let ratio = rmse_tiled / rmse_stripe;
        assert!(
            (0.75..1.34).contains(&ratio),
            "rmse band mismatch: {rmse_stripe} vs {rmse_tiled}"
        );
    }

    #[test]
    fn tiled_epoch_over_prebuilt_grid_matches_adhoc() {
        // hogwild_epoch(Tiled) and hogwild_epoch_tiled over the same grid
        // must do the same updates (single thread => deterministic order).
        let (ds, p_a, q_a) = setup(8);
        let (_, p_b, q_b) = setup(8);
        let config = cfg(1, Schedule::Tiled);
        let loss_a = hogwild_epoch(ds.matrix.entries(), &p_a, &q_a, &config);
        let grid =
            TileGrid::with_default_budget(ds.matrix.entries(), p_b.rows(), q_b.rows(), p_b.k());
        let loss_b = hogwild_epoch_tiled(&grid, &p_b, &q_b, &config);
        assert_eq!(loss_a, loss_b);
        assert_eq!(p_a.snapshot(), p_b.snapshot());
        assert_eq!(q_a.snapshot(), q_b.snapshot());
    }

    #[test]
    fn empty_shard_is_noop() {
        let (_, p, q) = setup(4);
        let snap = p.snapshot();
        let cfg = HogwildConfig::with_threads(4, 0.01);
        let loss = hogwild_epoch(&[], &p, &q, &cfg);
        assert_eq!(loss, 0.0);
        assert_eq!(p.snapshot(), snap);
        let grid = TileGrid::with_default_budget(&[], p.rows(), q.rows(), p.k());
        assert_eq!(hogwild_epoch_tiled(&grid, &p, &q, &cfg), 0.0);
        assert_eq!(p.snapshot(), snap);
    }

    #[test]
    fn more_threads_than_entries_is_fine() {
        let (ds, p, q) = setup(4);
        let few = &ds.matrix.entries()[..3];
        let cfg = HogwildConfig::with_threads(16, 0.01);
        let loss = hogwild_epoch(few, &p, &q, &cfg);
        assert!(loss.is_finite());
        let tiled = HogwildConfig {
            schedule: Schedule::Tiled,
            ..cfg
        };
        let loss = hogwild_epoch(few, &p, &q, &tiled);
        assert!(loss.is_finite());
    }

    #[test]
    fn returned_loss_is_sum_of_squared_errors_single_thread() {
        // Replay must hit the same backend as the epoch for exact equality.
        let _guard = crate::simd::test_lock();
        let (ds, p, q) = setup(4);
        let entries = &ds.matrix.entries()[..10];
        // Compute expected running loss with an independent serial replay.
        let p2 = SharedFactors::from_matrix(&p.snapshot());
        let q2 = SharedFactors::from_matrix(&q.snapshot());
        let cfg = HogwildConfig {
            threads: 1,
            learning_rate: 0.01,
            lambda_p: 0.0,
            lambda_q: 0.0,
            schedule: Schedule::Stripe,
        };
        let got = hogwild_epoch(entries, &p, &q, &cfg);
        let mut want = 0.0f64;
        for e in entries {
            let err = crate::kernel::sgd_step_shared(
                &p2,
                &q2,
                e.u as usize,
                e.i as usize,
                e.r,
                0.01,
                0.0,
                0.0,
            );
            want += (err as f64) * (err as f64);
        }
        assert!((got - want).abs() < 1e-9);
    }

    #[test]
    fn schedule_parses_and_displays() {
        assert_eq!("stripe".parse::<Schedule>().unwrap(), Schedule::Stripe);
        assert_eq!("tiled".parse::<Schedule>().unwrap(), Schedule::Tiled);
        assert!("diagonal".parse::<Schedule>().is_err());
        assert_eq!(Schedule::Tiled.to_string(), "tiled");
        assert_eq!(Schedule::default(), Schedule::Stripe);
    }

    #[test]
    #[should_panic(expected = "thread count")]
    fn zero_threads_panics() {
        let (ds, p, q) = setup(4);
        let cfg = HogwildConfig {
            threads: 0,
            learning_rate: 0.01,
            lambda_p: 0.0,
            lambda_q: 0.0,
            schedule: Schedule::Stripe,
        };
        hogwild_epoch(ds.matrix.entries(), &p, &q, &cfg);
    }
}
