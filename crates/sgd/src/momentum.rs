//! Momentum (heavy-ball) Hogwild SGD.
//!
//! The third member of the optimizer family next to plain SGD and
//! [`adagrad`](crate::adagrad): velocity buffers smooth the Hogwild
//! gradient noise, `v ← β·v + g`, `θ ← θ + γ·v`. Useful on noisy
//! skewed-popularity data where plain SGD's per-entry steps jitter.

use crate::factors::SharedFactors;
use crate::kernel::dot;
use hcc_sparse::Rating;
use std::sync::atomic::Ordering;

/// Velocity buffers for `P` and `Q`.
#[derive(Debug, Clone)]
pub struct MomentumState {
    velocity_p: SharedFactors,
    velocity_q: SharedFactors,
}

impl MomentumState {
    /// Zeroed velocities for `m × k` user and `n × k` item factors.
    pub fn new(m: usize, n: usize, k: usize) -> MomentumState {
        MomentumState {
            velocity_p: SharedFactors::zeros(m, k),
            velocity_q: SharedFactors::zeros(n, k),
        }
    }
}

/// Momentum epoch configuration.
#[derive(Debug, Clone, Copy)]
pub struct MomentumConfig {
    /// Hogwild threads.
    pub threads: usize,
    /// Learning rate γ.
    pub learning_rate: f32,
    /// Momentum coefficient β ∈ [0, 1).
    pub beta: f32,
    /// L2 on `P`.
    pub lambda_p: f32,
    /// L2 on `Q`.
    pub lambda_q: f32,
}

impl Default for MomentumConfig {
    fn default() -> Self {
        MomentumConfig {
            threads: 1,
            learning_rate: 0.005,
            beta: 0.9,
            lambda_p: 0.01,
            lambda_q: 0.01,
        }
    }
}

/// One Hogwild epoch with momentum steps. Returns summed squared pre-update
/// errors.
///
/// # Panics
/// Panics if `threads == 0` or `beta` is outside `[0, 1)`.
pub fn momentum_hogwild_epoch(
    entries: &[Rating],
    p: &SharedFactors,
    q: &SharedFactors,
    state: &MomentumState,
    cfg: &MomentumConfig,
) -> f64 {
    assert!(cfg.threads > 0, "thread count must be non-zero");
    assert!((0.0..1.0).contains(&cfg.beta), "beta must be in [0, 1)");
    if entries.is_empty() {
        return 0.0;
    }
    let threads = cfg.threads.min(entries.len());
    let k = p.k();
    let sweep = |offset: usize| {
        let mut scratch = vec![0f32; 2 * k];
        let mut acc = 0.0f64;
        let mut idx = offset;
        while idx < entries.len() {
            let e = entries[idx];
            let (u, i) = (e.u as usize, e.i as usize);
            let (pl, ql) = scratch.split_at_mut(k);
            let p_cells = p.row_cells(u);
            let q_cells = q.row_cells(i);
            let vp_cells = state.velocity_p.row_cells(u);
            let vq_cells = state.velocity_q.row_cells(i);
            // ordering: Relaxed throughout — Hogwild factor and velocity
            // cells: per-cell atomicity only, racing interleavings are
            // tolerated by the asynchronous-SGD convergence argument.
            for j in 0..k {
                pl[j] = f32::from_bits(p_cells[j].load(Ordering::Relaxed));
                ql[j] = f32::from_bits(q_cells[j].load(Ordering::Relaxed));
            }
            let err = e.r - dot(pl, ql);
            for j in 0..k {
                let gp = err * ql[j] - cfg.lambda_p * pl[j];
                let gq = err * pl[j] - cfg.lambda_q * ql[j];
                // ordering: Relaxed — see the loop-level note above.
                let vp = cfg.beta * f32::from_bits(vp_cells[j].load(Ordering::Relaxed)) + gp;
                let vq = cfg.beta * f32::from_bits(vq_cells[j].load(Ordering::Relaxed)) + gq;
                vp_cells[j].store(vp.to_bits(), Ordering::Relaxed);
                vq_cells[j].store(vq.to_bits(), Ordering::Relaxed);
                p_cells[j].store(
                    (pl[j] + cfg.learning_rate * vp).to_bits(),
                    Ordering::Relaxed,
                );
                q_cells[j].store(
                    (ql[j] + cfg.learning_rate * vq).to_bits(),
                    Ordering::Relaxed,
                );
            }
            acc += (err as f64) * (err as f64);
            idx += threads;
        }
        acc
    };
    if threads == 1 {
        return sweep(0);
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| scope.spawn(move || sweep(t)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .sum()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::rmse;
    use crate::FactorMatrix;
    use hcc_sparse::{GenConfig, SyntheticDataset};

    fn setup() -> (
        SyntheticDataset,
        SharedFactors,
        SharedFactors,
        MomentumState,
    ) {
        let ds = SyntheticDataset::generate(GenConfig {
            rows: 200,
            cols: 100,
            nnz: 5_000,
            noise: 0.0,
            ..GenConfig::default()
        });
        let p = SharedFactors::from_matrix(&FactorMatrix::random(200, 8, 21));
        let q = SharedFactors::from_matrix(&FactorMatrix::random(100, 8, 22));
        (ds, p, q, MomentumState::new(200, 100, 8))
    }

    #[test]
    fn momentum_converges() {
        let (ds, p, q, state) = setup();
        let cfg = MomentumConfig {
            threads: 2,
            learning_rate: 0.005,
            ..Default::default()
        };
        let before = rmse(ds.matrix.entries(), &p.snapshot(), &q.snapshot());
        for _ in 0..15 {
            momentum_hogwild_epoch(ds.matrix.entries(), &p, &q, &state, &cfg);
        }
        let after = rmse(ds.matrix.entries(), &p.snapshot(), &q.snapshot());
        assert!(after < before * 0.5, "{before} -> {after}");
    }

    #[test]
    fn zero_beta_equals_plain_sgd() {
        // β = 0 degenerates to plain SGD (single thread, same order).
        let (ds, p, q, state) = setup();
        let entries = &ds.matrix.entries()[..200];
        let cfg = MomentumConfig {
            threads: 1,
            learning_rate: 0.01,
            beta: 0.0,
            lambda_p: 0.02,
            lambda_q: 0.03,
        };
        momentum_hogwild_epoch(entries, &p, &q, &state, &cfg);

        let p2 = SharedFactors::from_matrix(&FactorMatrix::random(200, 8, 21));
        let q2 = SharedFactors::from_matrix(&FactorMatrix::random(100, 8, 22));
        let hw = crate::hogwild::HogwildConfig {
            threads: 1,
            learning_rate: 0.01,
            lambda_p: 0.02,
            lambda_q: 0.03,
            schedule: Default::default(),
        };
        crate::hogwild::hogwild_epoch(entries, &p2, &q2, &hw);
        let a = p.snapshot();
        let b = p2.snapshot();
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn invalid_beta_panics() {
        let (ds, p, q, state) = setup();
        let cfg = MomentumConfig {
            beta: 1.0,
            ..Default::default()
        };
        momentum_hogwild_epoch(ds.matrix.entries(), &p, &q, &state, &cfg);
    }

    #[test]
    fn empty_entries_noop() {
        let (_, p, q, state) = setup();
        assert_eq!(
            momentum_hogwild_epoch(&[], &p, &q, &state, &MomentumConfig::default()),
            0.0
        );
    }
}
