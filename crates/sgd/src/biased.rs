//! Biased matrix factorization: `r̂_ui = μ + b_u + c_i + p_u·q_i`.
//!
//! The paper trains the plain inner-product model (Fig. 1); bias terms are
//! the standard first extension every production MF adds (they absorb the
//! "user rates generously / item is popular" signal so the factors only
//! model interaction). This module provides the biased update rule, a
//! Hogwild epoch over shared state, and evaluation — usable standalone and
//! exercised by the ablation benches.

use crate::factors::SharedFactors;
use crate::kernel::dot;
use crate::FactorMatrix;
use hcc_sparse::Rating;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// A shared bias vector (relaxed-atomic f32 cells), the 1-D sibling of
/// [`SharedFactors`].
#[derive(Debug, Clone)]
pub struct SharedBias {
    cells: Arc<[AtomicU32]>,
}

impl SharedBias {
    /// Zero biases of length `len`.
    pub fn zeros(len: usize) -> SharedBias {
        SharedBias {
            cells: (0..len).map(|_| AtomicU32::new(0f32.to_bits())).collect(),
        }
    }

    /// Number of biases.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Loads bias `j`.
    #[inline]
    pub fn load(&self, j: usize) -> f32 {
        // ordering: Relaxed — Hogwild bias cells, same contract as
        // `SharedFactors::load`: per-cell atomicity, no cross-cell order.
        f32::from_bits(self.cells[j].load(Ordering::Relaxed))
    }

    /// Stores bias `j`.
    #[inline]
    pub fn store(&self, j: usize, v: f32) {
        // ordering: Relaxed — see `load`; staleness is tolerated by the
        // Hogwild convergence argument.
        self.cells[j].store(v.to_bits(), Ordering::Relaxed);
    }

    /// Snapshots to a plain vector.
    pub fn snapshot(&self) -> Vec<f32> {
        // ordering: Relaxed — snapshots run after the training scope joins,
        // which is the publication edge.
        self.cells
            .iter()
            .map(|c| f32::from_bits(c.load(Ordering::Relaxed)))
            .collect()
    }
}

/// The complete biased model state shared across Hogwild threads.
#[derive(Debug, Clone)]
pub struct BiasedModel {
    /// Global rating mean μ.
    pub mu: f32,
    /// User factors (m × k).
    pub p: SharedFactors,
    /// Item factors (n × k).
    pub q: SharedFactors,
    /// User biases b (length m).
    pub user_bias: SharedBias,
    /// Item biases c (length n).
    pub item_bias: SharedBias,
}

impl BiasedModel {
    /// Initializes a model: factors random, biases zero, μ from the data.
    pub fn init(m: usize, n: usize, k: usize, mu: f32, seed: u64) -> BiasedModel {
        BiasedModel {
            mu,
            p: SharedFactors::from_matrix(&FactorMatrix::random(m, k, seed)),
            q: SharedFactors::from_matrix(&FactorMatrix::random(n, k, seed ^ 0x9e37)),
            user_bias: SharedBias::zeros(m),
            item_bias: SharedBias::zeros(n),
        }
    }

    /// Prediction for `(u, i)`.
    pub fn predict(&self, u: usize, i: usize) -> f32 {
        let k = self.p.k();
        let mut pu = vec![0f32; k];
        let mut qi = vec![0f32; k];
        self.p.load_row_into(u, &mut pu);
        self.q.load_row_into(i, &mut qi);
        self.mu + self.user_bias.load(u) + self.item_bias.load(i) + dot(&pu, &qi)
    }

    /// RMSE over entries.
    pub fn rmse(&self, entries: &[Rating]) -> f64 {
        if entries.is_empty() {
            return 0.0;
        }
        let sum: f64 = entries
            .iter()
            .map(|e| {
                let err = e.r as f64 - self.predict(e.u as usize, e.i as usize) as f64;
                err * err
            })
            .sum();
        (sum / entries.len() as f64).sqrt()
    }
}

/// Hyper-parameters of one biased Hogwild epoch.
#[derive(Debug, Clone, Copy)]
pub struct BiasedConfig {
    /// Threads.
    pub threads: usize,
    /// Learning rate γ.
    pub learning_rate: f32,
    /// Regularization on factors.
    pub lambda_factor: f32,
    /// Regularization on biases.
    pub lambda_bias: f32,
}

/// One biased SGD update. Returns the pre-update error.
#[inline]
pub fn sgd_step_biased(
    model: &BiasedModel,
    u: usize,
    i: usize,
    r: f32,
    config: &BiasedConfig,
    scratch: &mut [f32],
) -> f32 {
    let k = model.p.k();
    debug_assert_eq!(scratch.len(), 2 * k);
    let (pu, qi) = scratch.split_at_mut(k);
    model.p.load_row_into(u, pu);
    model.q.load_row_into(i, qi);
    let bu = model.user_bias.load(u);
    let ci = model.item_bias.load(i);
    let e = r - (model.mu + bu + ci + dot(pu, qi));

    let lr = config.learning_rate;
    model
        .user_bias
        .store(u, bu + lr * (e - config.lambda_bias * bu));
    model
        .item_bias
        .store(i, ci + lr * (e - config.lambda_bias * ci));
    let p_cells = model.p.row_cells(u);
    let q_cells = model.q.row_cells(i);
    // ordering: Relaxed — the Hogwild update itself: racing writers may
    // interleave per cell, which the convergence analysis tolerates; no
    // other data is published through these stores.
    for j in 0..k {
        let p_old = pu[j];
        let p_new = p_old + lr * (e * qi[j] - config.lambda_factor * p_old);
        let q_new = qi[j] + lr * (e * p_old - config.lambda_factor * qi[j]);
        p_cells[j].store(p_new.to_bits(), Ordering::Relaxed); // ordering: above
        q_cells[j].store(q_new.to_bits(), Ordering::Relaxed); // ordering: above
    }
    e
}

/// One Hogwild epoch of biased MF over `entries`. Returns summed squared
/// pre-update errors (a running training loss).
pub fn biased_hogwild_epoch(entries: &[Rating], model: &BiasedModel, config: &BiasedConfig) -> f64 {
    assert!(config.threads > 0, "thread count must be non-zero");
    if entries.is_empty() {
        return 0.0;
    }
    let threads = config.threads.min(entries.len());
    let sweep = |offset: usize| {
        let k = model.p.k();
        let mut scratch = vec![0f32; 2 * k];
        let mut acc = 0.0f64;
        let mut idx = offset;
        while idx < entries.len() {
            let e = entries[idx];
            let err = sgd_step_biased(model, e.u as usize, e.i as usize, e.r, config, &mut scratch);
            acc += (err as f64) * (err as f64);
            idx += threads;
        }
        acc
    };
    if threads == 1 {
        return sweep(0);
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| scope.spawn(move || sweep(t)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .sum()
    })
}

/// Convenience trainer: `epochs` biased Hogwild epochs with μ set to the
/// training mean. Returns the trained model.
pub fn train_biased(
    entries: &[Rating],
    m: usize,
    n: usize,
    k: usize,
    epochs: usize,
    config: &BiasedConfig,
    seed: u64,
) -> BiasedModel {
    let mu = if entries.is_empty() {
        0.0
    } else {
        (entries.iter().map(|e| e.r as f64).sum::<f64>() / entries.len() as f64) as f32
    };
    let model = BiasedModel::init(m, n, k, mu, seed);
    for _ in 0..epochs {
        biased_hogwild_epoch(entries, &model, config);
    }
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_sparse::{GenConfig, SyntheticDataset};
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn config() -> BiasedConfig {
        BiasedConfig {
            threads: 2,
            learning_rate: 0.02,
            lambda_factor: 0.01,
            lambda_bias: 0.01,
        }
    }

    #[test]
    fn shared_bias_roundtrip() {
        let b = SharedBias::zeros(4);
        assert_eq!(b.len(), 4);
        assert!(!b.is_empty());
        b.store(2, 1.5);
        assert_eq!(b.load(2), 1.5);
        assert_eq!(b.snapshot(), vec![0.0, 0.0, 1.5, 0.0]);
        let alias = b.clone();
        alias.store(0, -1.0);
        assert_eq!(b.load(0), -1.0);
    }

    #[test]
    fn biased_model_converges() {
        let ds = SyntheticDataset::generate(GenConfig {
            rows: 150,
            cols: 100,
            nnz: 4_000,
            noise: 0.0,
            ..GenConfig::default()
        });
        let entries = ds.matrix.entries();
        let model = BiasedModel::init(150, 100, 8, ds.matrix.mean_rating() as f32, 1);
        let before = model.rmse(entries);
        let cfg = config();
        for _ in 0..20 {
            biased_hogwild_epoch(entries, &model, &cfg);
        }
        let after = model.rmse(entries);
        assert!(after < before * 0.5, "{before} -> {after}");
    }

    #[test]
    fn biases_absorb_additive_structure() {
        // Data = μ + b_u + c_i + noise, NO interaction: the biased model at
        // k=1 should fit it much better than the unbiased inner product can
        // from tiny factors in the same number of epochs.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let m = 80u32;
        let n = 60u32;
        let user_b: Vec<f32> = (0..m).map(|_| rng.random_range(-1.0f32..1.0)).collect();
        let item_b: Vec<f32> = (0..n).map(|_| rng.random_range(-1.0f32..1.0)).collect();
        let mut entries = Vec::new();
        for _ in 0..4_000 {
            let u = rng.random_range(0..m);
            let i = rng.random_range(0..n);
            entries.push(Rating::new(
                u,
                i,
                3.0 + user_b[u as usize] + item_b[i as usize],
            ));
        }
        let cfg = BiasedConfig {
            threads: 1,
            ..config()
        };
        let model = train_biased(&entries, m as usize, n as usize, 1, 30, &cfg, 7);
        let biased_rmse = model.rmse(&entries);
        assert!(biased_rmse < 0.15, "biased rmse {biased_rmse}");

        // Unbiased model on the same data and budget.
        let p = SharedFactors::from_matrix(&FactorMatrix::random(m as usize, 1, 7));
        let q = SharedFactors::from_matrix(&FactorMatrix::random(n as usize, 1, 8));
        let hw = crate::hogwild::HogwildConfig {
            threads: 1,
            learning_rate: 0.02,
            lambda_p: 0.01,
            lambda_q: 0.01,
            schedule: Default::default(),
        };
        for _ in 0..30 {
            crate::hogwild::hogwild_epoch(&entries, &p, &q, &hw);
        }
        let unbiased_rmse = crate::loss::rmse(&entries, &p.snapshot(), &q.snapshot());
        assert!(
            biased_rmse < unbiased_rmse * 0.7,
            "biased {biased_rmse} vs unbiased {unbiased_rmse}"
        );
    }

    #[test]
    fn predict_composes_terms() {
        let model = BiasedModel::init(2, 2, 2, 3.0, 1);
        model.user_bias.store(0, 0.5);
        model.item_bias.store(1, -0.25);
        model.p.store_row(0, &[1.0, 2.0]);
        model.q.store_row(1, &[0.5, 0.25]);
        let expect = 3.0 + 0.5 - 0.25 + (1.0 * 0.5 + 2.0 * 0.25);
        assert!((model.predict(0, 1) - expect).abs() < 1e-6);
    }

    #[test]
    fn empty_entries_are_noop() {
        let model = BiasedModel::init(2, 2, 2, 0.0, 1);
        assert_eq!(biased_hogwild_epoch(&[], &model, &config()), 0.0);
        assert_eq!(model.rmse(&[]), 0.0);
        let trained = train_biased(&[], 2, 2, 2, 3, &config(), 1);
        assert_eq!(trained.mu, 0.0);
    }
}
