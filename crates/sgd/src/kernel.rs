//! The single-rating SGD update rule.
//!
//! Loss (Fig. 1 of the paper):
//! `L = Σ (r_ui − p_u·q_i)² + λ1‖P‖² + λ2‖Q‖²`, minimized by per-observation
//! updates:
//!
//! ```text
//! e    = r_ui − p_u·q_i
//! p_u += γ (e·q_i − λ1·p_u)
//! q_i += γ (e·p_u_old − λ2·q_i)
//! ```
//!
//! The kernel is written over plain slices (used by serial SGD, FPSGD blocks,
//! and tests) and over [`SharedFactors`] rows (used by Hogwild threads). Both
//! use the *old* `p_u` in the `q_i` update, matching FPSGD/CuMF_SGD, and both
//! route through the same runtime-dispatched fused kernel in [`crate::simd`],
//! so within one process they produce bit-identical results.

use crate::factors::SharedFactors;
use crate::simd;

/// Inner product of two equal-length slices, through the runtime-dispatched
/// kernel (AVX2+FMA where available, plain auto-vectorizable loop otherwise).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    simd::dot(a, b)
}

/// Inner product with 8 independent lane accumulators.
///
/// The serial-dependence-free *portable* form of the paper's AVX512
/// inner-product kernel, kept as a bench baseline: eight partial sums break
/// the add-chain so the compiler can keep eight FMA lanes busy even without
/// intrinsics. The hot path now uses [`dot`], which dispatches to the
/// hand-written AVX2 kernel at runtime.
#[inline]
pub fn dot_unrolled(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f32; 8];
    let chunks = a.len() / 8;
    for c in 0..chunks {
        let base = c * 8;
        for j in 0..8 {
            lanes[j] += a[base + j] * b[base + j];
        }
    }
    let mut acc = lanes.iter().sum::<f32>();
    for j in chunks * 8..a.len() {
        acc += a[j] * b[j];
    }
    acc
}

/// One SGD update on plain factor rows. Returns the prediction error
/// `e = r − p·q` *before* the update.
#[inline]
pub fn sgd_step(
    p: &mut [f32],
    q: &mut [f32],
    r: f32,
    lr: f32,
    lambda_p: f32,
    lambda_q: f32,
) -> f32 {
    debug_assert_eq!(p.len(), q.len());
    let k = p.len();
    // SAFETY: `p` and `q` are exclusive borrows of `k` f32s each, so the
    // pointers are valid and writable for the whole call, and two distinct
    // `&mut` slices can never overlap.
    unsafe { simd::fused_step_ptr(p.as_mut_ptr(), q.as_mut_ptr(), k, r, lr, lambda_p, lambda_q) }
}

/// One SGD update on shared (Hogwild) factor rows; same math as [`sgd_step`]
/// but operating directly inside the `AtomicU32` bit-cells of `p` row `u` and
/// `q` row `i` — no scratch copy, no per-element atomic loop, so the fused
/// SIMD kernel runs at full speed on the shared rows.
///
/// `p` and `q` must be *different* matrices (they always are in MF: `P` is
/// users, `Q` is items), otherwise the two rows could alias.
#[inline]
#[allow(clippy::too_many_arguments)] // hot kernel: flat scalars beat a params struct
pub fn sgd_step_shared(
    p: &SharedFactors,
    q: &SharedFactors,
    u: usize,
    i: usize,
    r: f32,
    lr: f32,
    lambda_p: f32,
    lambda_q: f32,
) -> f32 {
    let k = p.k();
    debug_assert_eq!(q.k(), k);
    let p_cells = p.row_cells(u);
    let q_cells = q.row_cells(i);
    // SAFETY: this reads and writes the shared rows through plain (and SIMD)
    // loads/stores derived from the `AtomicU32` cells. The argument:
    //
    // * Validity/layout — `AtomicU32` has the same size, alignment and bit
    //   validity as `u32` (std guarantee), which has the same layout as
    //   `f32`, so `p_cells.as_ptr() as *mut f32` points to `k` valid,
    //   4-byte-aligned f32 lanes inside one live allocation for the whole
    //   call (the `&[AtomicU32]` borrows keep the rows alive).
    // * Mutability — the cells' interior is an `UnsafeCell`, so writing
    //   through a pointer derived from a shared reference is permitted.
    // * No aliasing between rows — `p` and `q` are distinct matrices per the
    //   contract above, so the two rows occupy disjoint memory.
    // * Tearing-freedom — every access the kernel performs is a 4-byte
    //   element load/store or an 8-lane vector load/store of such elements;
    //   on x86-64 (and every target Rust supports) aligned 4-byte accesses
    //   are single-copy atomic, so a racing reader observes some previously
    //   stored lane value, never a torn one. This is exactly the guarantee
    //   the seed's per-element `Relaxed` atomic loop provided: Hogwild
    //   tolerates stale lane values (sparse conflicts, §2.1/§4.2), it only
    //   needs them untorn. Concurrent access is confined to Hogwild threads
    //   running this same kernel on rows of the same `SharedFactors`, and
    //   no ordering beyond per-lane atomicity is required or implied.
    unsafe {
        simd::fused_step_ptr(
            p_cells.as_ptr() as *mut f32,
            q_cells.as_ptr() as *mut f32,
            k,
            r,
            lr,
            lambda_p,
            lambda_q,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factors::FactorMatrix;

    #[test]
    fn dot_matches_manual() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn dot_unrolled_matches_dot() {
        for len in [0usize, 1, 7, 8, 9, 16, 31, 32, 128] {
            let a: Vec<f32> = (0..len).map(|j| (j as f32 * 0.37).sin()).collect();
            let b: Vec<f32> = (0..len).map(|j| (j as f32 * 0.53).cos()).collect();
            let plain = dot(&a, &b) as f64;
            let fast = dot_unrolled(&a, &b) as f64;
            assert!(
                (plain - fast).abs() <= 1e-5 * plain.abs().max(1.0),
                "len {len}: {plain} vs {fast}"
            );
        }
    }

    #[test]
    fn sgd_step_matches_hand_computed_gradient() {
        // k=2, p=[1,2], q=[3,4], r=12, lr=0.1, λp=0.01, λq=0.02.
        // e = 12 - 11 = 1.
        // p0' = 1 + .1(1·3 - .01·1) = 1.299
        // p1' = 2 + .1(1·4 - .01·2) = 2.398
        // q0' = 3 + .1(1·1 - .02·3) = 3.094
        // q1' = 4 + .1(1·2 - .02·4) = 4.192
        let mut p = [1.0f32, 2.0];
        let mut q = [3.0f32, 4.0];
        let e = sgd_step(&mut p, &mut q, 12.0, 0.1, 0.01, 0.02);
        assert!((e - 1.0).abs() < 1e-6);
        assert!((p[0] - 1.299).abs() < 1e-6, "p0 {}", p[0]);
        assert!((p[1] - 2.398).abs() < 1e-6);
        assert!((q[0] - 3.094).abs() < 1e-6);
        assert!((q[1] - 4.192).abs() < 1e-6);
    }

    #[test]
    fn sgd_step_reduces_error_on_repeat() {
        let mut p = [0.5f32; 8];
        let mut q = [0.5f32; 8];
        let r = 4.0;
        let mut last = f32::INFINITY;
        for _ in 0..50 {
            let e = sgd_step(&mut p, &mut q, r, 0.05, 0.0, 0.0).abs();
            assert!(e <= last + 1e-4, "error increased: {e} > {last}");
            last = e;
        }
        assert!(last < 0.05, "did not converge: {last}");
    }

    #[test]
    fn shared_step_matches_plain_step() {
        // Exact equality relies on both paths hitting the same backend, so
        // hold the dispatch lock against backend-forcing tests.
        let _guard = crate::simd::test_lock();
        for k in [4usize, 8, 13, 128] {
            let pm = FactorMatrix::random(2, k, 1);
            let qm = FactorMatrix::random(3, k, 2);
            // Plain version.
            let mut p_plain = pm.row(1).to_vec();
            let mut q_plain = qm.row(2).to_vec();
            let e_plain = sgd_step(&mut p_plain, &mut q_plain, 3.5, 0.01, 0.02, 0.03);
            // Shared version.
            let ps = SharedFactors::from_matrix(&pm);
            let qs = SharedFactors::from_matrix(&qm);
            let e_shared = sgd_step_shared(&ps, &qs, 1, 2, 3.5, 0.01, 0.02, 0.03);
            assert_eq!(e_plain, e_shared, "k {k}");
            let mut buf = vec![0f32; k];
            ps.load_row_into(1, &mut buf);
            assert_eq!(buf, p_plain, "k {k}");
            qs.load_row_into(2, &mut buf);
            assert_eq!(buf, q_plain, "k {k}");
            // Untouched rows stay untouched.
            ps.load_row_into(0, &mut buf);
            assert_eq!(buf, pm.row(0), "k {k}");
        }
    }

    #[test]
    fn regularization_shrinks_factors_without_signal() {
        // r == p·q means e == 0, so only the λ terms act: norms must shrink.
        let mut p = [1.0f32, 1.0];
        let mut q = [1.0f32, 1.0];
        let r = dot(&p, &q);
        for _ in 0..10 {
            sgd_step(&mut p, &mut q, r, 0.1, 0.5, 0.5);
        }
        assert!(p.iter().all(|&v| v < 1.0));
        assert!(q.iter().all(|&v| v < 1.0));
    }
}
