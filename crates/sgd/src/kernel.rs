//! The single-rating SGD update rule.
//!
//! Loss (Fig. 1 of the paper):
//! `L = Σ (r_ui − p_u·q_i)² + λ1‖P‖² + λ2‖Q‖²`, minimized by per-observation
//! updates:
//!
//! ```text
//! e    = r_ui − p_u·q_i
//! p_u += γ (e·q_i − λ1·p_u)
//! q_i += γ (e·p_u_old − λ2·q_i)
//! ```
//!
//! The kernel is written over plain slices (used by serial SGD, FPSGD blocks,
//! and tests) and over [`SharedFactors`] rows (used by Hogwild threads). Both
//! use the *old* `p_u` in the `q_i` update, matching FPSGD/CuMF_SGD.

use crate::factors::SharedFactors;
use std::sync::atomic::Ordering;

/// Inner product of two equal-length slices.
///
/// Written as a plain indexed loop over a fixed-length zip so LLVM can
/// auto-vectorize it (the paper's hand-written AVX512 analog).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    for (&x, &y) in a.iter().zip(b.iter()) {
        acc += x * y;
    }
    acc
}

/// Inner product with 8 independent lane accumulators.
///
/// The serial-dependence-free form of the paper's AVX512 inner-product
/// kernel: eight partial sums break the add-chain so the compiler can keep
/// eight FMA lanes busy. Result differs from [`dot`] only by floating-point
/// reassociation. Measured by the `sgd_kernel` bench; at the paper's
/// k = 128 it is the faster choice, at small k the plain loop wins.
#[inline]
pub fn dot_unrolled(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f32; 8];
    let chunks = a.len() / 8;
    for c in 0..chunks {
        let base = c * 8;
        for j in 0..8 {
            lanes[j] += a[base + j] * b[base + j];
        }
    }
    let mut acc = lanes.iter().sum::<f32>();
    for j in chunks * 8..a.len() {
        acc += a[j] * b[j];
    }
    acc
}

/// One SGD update on plain factor rows. Returns the prediction error
/// `e = r − p·q` *before* the update.
#[inline]
pub fn sgd_step(p: &mut [f32], q: &mut [f32], r: f32, lr: f32, lambda_p: f32, lambda_q: f32) -> f32 {
    debug_assert_eq!(p.len(), q.len());
    let e = r - dot(p, q);
    for (pu, qi) in p.iter_mut().zip(q.iter_mut()) {
        let p_old = *pu;
        *pu += lr * (e * *qi - lambda_p * p_old);
        *qi += lr * (e * p_old - lambda_q * *qi);
    }
    e
}

/// One SGD update on shared (Hogwild) factor rows; same math as [`sgd_step`]
/// but element values are loaded/stored through relaxed atomics.
///
/// `scratch` must have length `2k` and is reused across calls to avoid
/// per-update allocation; it holds the locally loaded copies of `p_u`, `q_i`.
#[inline]
#[allow(clippy::too_many_arguments)] // hot kernel: flat scalars beat a params struct
pub fn sgd_step_shared(
    p: &SharedFactors,
    q: &SharedFactors,
    u: usize,
    i: usize,
    r: f32,
    lr: f32,
    lambda_p: f32,
    lambda_q: f32,
    scratch: &mut [f32],
) -> f32 {
    let k = p.k();
    debug_assert_eq!(q.k(), k);
    debug_assert_eq!(scratch.len(), 2 * k);
    let (pl, ql) = scratch.split_at_mut(k);

    let p_cells = p.row_cells(u);
    let q_cells = q.row_cells(i);
    for j in 0..k {
        pl[j] = f32::from_bits(p_cells[j].load(Ordering::Relaxed));
        ql[j] = f32::from_bits(q_cells[j].load(Ordering::Relaxed));
    }
    let e = r - dot(pl, ql);
    for j in 0..k {
        let p_old = pl[j];
        let p_new = p_old + lr * (e * ql[j] - lambda_p * p_old);
        let q_new = ql[j] + lr * (e * p_old - lambda_q * ql[j]);
        p_cells[j].store(p_new.to_bits(), Ordering::Relaxed);
        q_cells[j].store(q_new.to_bits(), Ordering::Relaxed);
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factors::FactorMatrix;

    #[test]
    fn dot_matches_manual() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn dot_unrolled_matches_dot() {
        for len in [0usize, 1, 7, 8, 9, 16, 31, 32, 128] {
            let a: Vec<f32> = (0..len).map(|j| (j as f32 * 0.37).sin()).collect();
            let b: Vec<f32> = (0..len).map(|j| (j as f32 * 0.53).cos()).collect();
            let plain = dot(&a, &b) as f64;
            let fast = dot_unrolled(&a, &b) as f64;
            assert!(
                (plain - fast).abs() <= 1e-5 * plain.abs().max(1.0),
                "len {len}: {plain} vs {fast}"
            );
        }
    }

    #[test]
    fn sgd_step_matches_hand_computed_gradient() {
        // k=2, p=[1,2], q=[3,4], r=12, lr=0.1, λp=0.01, λq=0.02.
        // e = 12 - 11 = 1.
        // p0' = 1 + .1(1·3 - .01·1) = 1.299
        // p1' = 2 + .1(1·4 - .01·2) = 2.398
        // q0' = 3 + .1(1·1 - .02·3) = 3.094
        // q1' = 4 + .1(1·2 - .02·4) = 4.192
        let mut p = [1.0f32, 2.0];
        let mut q = [3.0f32, 4.0];
        let e = sgd_step(&mut p, &mut q, 12.0, 0.1, 0.01, 0.02);
        assert!((e - 1.0).abs() < 1e-6);
        assert!((p[0] - 1.299).abs() < 1e-6, "p0 {}", p[0]);
        assert!((p[1] - 2.398).abs() < 1e-6);
        assert!((q[0] - 3.094).abs() < 1e-6);
        assert!((q[1] - 4.192).abs() < 1e-6);
    }

    #[test]
    fn sgd_step_reduces_error_on_repeat() {
        let mut p = [0.5f32; 8];
        let mut q = [0.5f32; 8];
        let r = 4.0;
        let mut last = f32::INFINITY;
        for _ in 0..50 {
            let e = sgd_step(&mut p, &mut q, r, 0.05, 0.0, 0.0).abs();
            assert!(e <= last + 1e-4, "error increased: {e} > {last}");
            last = e;
        }
        assert!(last < 0.05, "did not converge: {last}");
    }

    #[test]
    fn shared_step_matches_plain_step() {
        let k = 4;
        let pm = FactorMatrix::random(2, k, 1);
        let qm = FactorMatrix::random(3, k, 2);
        // Plain version.
        let mut p_plain = pm.row(1).to_vec();
        let mut q_plain = qm.row(2).to_vec();
        let e_plain = sgd_step(&mut p_plain, &mut q_plain, 3.5, 0.01, 0.02, 0.03);
        // Shared version.
        let ps = SharedFactors::from_matrix(&pm);
        let qs = SharedFactors::from_matrix(&qm);
        let mut scratch = vec![0f32; 2 * k];
        let e_shared = sgd_step_shared(&ps, &qs, 1, 2, 3.5, 0.01, 0.02, 0.03, &mut scratch);
        assert_eq!(e_plain, e_shared);
        let mut buf = vec![0f32; k];
        ps.load_row_into(1, &mut buf);
        assert_eq!(buf, p_plain);
        qs.load_row_into(2, &mut buf);
        assert_eq!(buf, q_plain);
        // Untouched rows stay untouched.
        ps.load_row_into(0, &mut buf);
        assert_eq!(buf, pm.row(0));
    }

    #[test]
    fn regularization_shrinks_factors_without_signal() {
        // r == p·q means e == 0, so only the λ terms act: norms must shrink.
        let mut p = [1.0f32, 1.0];
        let mut q = [1.0f32, 1.0];
        let r = dot(&p, &q);
        for _ in 0..10 {
            sgd_step(&mut p, &mut q, r, 0.1, 0.5, 0.5);
        }
        assert!(p.iter().all(|&v| v < 1.0));
        assert!(q.iter().all(|&v| v < 1.0));
    }
}
