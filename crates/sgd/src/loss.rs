//! RMSE evaluation.
//!
//! The paper's convergence plots (Fig. 7) report RMSE of `P·Q` against the
//! observed ratings. Accumulation is in `f64` so 100M-entry sums don't lose
//! precision.

use crate::factors::FactorMatrix;
use crate::kernel::dot;
use hcc_sparse::Rating;
use rayon::prelude::*;

/// Root-mean-square error of predictions `p_u · q_i` over `entries`.
/// Returns 0 for an empty slice.
pub fn rmse(entries: &[Rating], p: &FactorMatrix, q: &FactorMatrix) -> f64 {
    if entries.is_empty() {
        return 0.0;
    }
    let sum: f64 = entries
        .iter()
        .map(|e| {
            let err = e.r as f64 - dot(p.row(e.u as usize), q.row(e.i as usize)) as f64;
            err * err
        })
        .sum();
    (sum / entries.len() as f64).sqrt()
}

/// Parallel RMSE via rayon; identical result to [`rmse`] up to the usual
/// floating-point reassociation of the sum (accumulated in `f64`, the
/// difference is negligible and tested to be so).
pub fn rmse_parallel(entries: &[Rating], p: &FactorMatrix, q: &FactorMatrix) -> f64 {
    if entries.is_empty() {
        return 0.0;
    }
    let sum: f64 = entries
        .par_iter()
        .map(|e| {
            let err = e.r as f64 - dot(p.row(e.u as usize), q.row(e.i as usize)) as f64;
            err * err
        })
        .sum();
    (sum / entries.len() as f64).sqrt()
}

/// Mean squared training objective including regularization terms — the loss
/// function in Fig. 1 of the paper (useful for monotonicity diagnostics).
pub fn regularized_objective(
    entries: &[Rating],
    p: &FactorMatrix,
    q: &FactorMatrix,
    lambda_p: f64,
    lambda_q: f64,
) -> f64 {
    let mse: f64 = entries
        .iter()
        .map(|e| {
            let err = e.r as f64 - dot(p.row(e.u as usize), q.row(e.i as usize)) as f64;
            err * err
        })
        .sum();
    let np = p.frobenius_norm();
    let nq = q.frobenius_norm();
    mse + lambda_p * np * np + lambda_q * nq * nq
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Vec<Rating>, FactorMatrix, FactorMatrix) {
        let p = FactorMatrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let q = FactorMatrix::from_vec(2, 2, vec![2.0, 0.0, 0.0, 3.0]);
        // Predictions: (0,0)->2, (0,1)->0, (1,1)->3.
        let entries = vec![
            Rating::new(0, 0, 3.0), // err 1
            Rating::new(0, 1, 2.0), // err 2
            Rating::new(1, 1, 3.0), // err 0
        ];
        (entries, p, q)
    }

    #[test]
    fn rmse_matches_hand_computed() {
        let (entries, p, q) = tiny();
        let expect = ((1.0 + 4.0 + 0.0) / 3.0f64).sqrt();
        assert!((rmse(&entries, &p, &q) - expect).abs() < 1e-12);
    }

    #[test]
    fn parallel_matches_serial() {
        let (entries, p, q) = tiny();
        let a = rmse(&entries, &p, &q);
        let b = rmse_parallel(&entries, &p, &q);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn empty_entries_give_zero() {
        let (_, p, q) = tiny();
        assert_eq!(rmse(&[], &p, &q), 0.0);
        assert_eq!(rmse_parallel(&[], &p, &q), 0.0);
    }

    #[test]
    fn perfect_predictions_give_zero_rmse() {
        let (mut entries, p, q) = tiny();
        for e in &mut entries {
            e.r = dot(p.row(e.u as usize), q.row(e.i as usize));
        }
        assert_eq!(rmse(&entries, &p, &q), 0.0);
    }

    #[test]
    fn objective_includes_regularization() {
        let (entries, p, q) = tiny();
        let base = regularized_objective(&entries, &p, &q, 0.0, 0.0);
        let reg = regularized_objective(&entries, &p, &q, 1.0, 1.0);
        // ‖P‖² = 2, ‖Q‖² = 13.
        assert!((reg - base - 15.0).abs() < 1e-9);
    }
}
