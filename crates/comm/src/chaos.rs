//! Deterministic network chaos injection.
//!
//! [`ChaosTransport`] wraps *any* [`Transport`] and perturbs its push and
//! collect paths the way a misbehaving network would: frames are dropped,
//! delayed, duplicated, corrupted, or a link is partitioned outright. The
//! schedule is a pure function of `(seed, worker, epoch, op)` — the same
//! golden-ratio stream split the threaded fault harness
//! (`hcc_mf::fault::FaultPlan`) uses — so a chaos run is exactly
//! reproducible and a CI matrix can pin seeds.
//!
//! Fault semantics at the [`Transport`] boundary:
//!
//! * **drop** — the push is swallowed; the server's `collect_timeout`
//!   expires and the supervisor classifies the worker, the same path a
//!   crashed worker takes.
//! * **delay** — the push is delivered after a fixed sleep, turning the
//!   worker into a straggler for that epoch.
//! * **duplicate** — the push is delivered, then delivered *again* via
//!   [`Transport::push_duplicate`] (same sequence number on framed
//!   transports), exercising the server's idempotency dedup.
//! * **corrupt** — the push is swallowed and the next `collect_timeout`
//!   for that worker returns [`CommError::Corrupt`] — what a CRC-rejected
//!   frame looks like from the server. The supervisor treats it exactly
//!   like a dropped push: retry, then classify.
//! * **partition** — from a given epoch on, one worker's pushes are
//!   swallowed, its pulls stop updating, and collects fail fast with
//!   [`CommError::PartitionedLink`]; the supervisor marks the worker dead
//!   and survivors re-plan.
//!
//! Chaos requires a supervised run: the plain training loop's blocking
//! `collect` would wait forever on a dropped push, so configuration
//! validation ties `--net-chaos` to `--fault-tolerant`.

use crate::transport::{CommError, Transport};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Op codes mixed into the per-decision random stream. `hcc-hetsim`
/// mirrors these constants (it has no dependency on this crate) so the
/// DES twin derives the *same* drop schedule from the same seed.
pub const OP_DROP: u8 = 1;
/// See [`OP_DROP`].
pub const OP_DELAY: u8 = 2;
/// See [`OP_DROP`].
pub const OP_DUPLICATE: u8 = 3;
/// See [`OP_DROP`].
pub const OP_CORRUPT: u8 = 4;

/// Deterministic unit draw in `[0, 1)` for `(seed, worker, epoch, op)`:
/// the `FaultPlan` golden-ratio stream split followed by a splitmix64
/// finalizer.
pub fn chaos_roll(seed: u64, worker: usize, epoch: u64, op: u8) -> f64 {
    let stream = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((worker as u64) << 32)
        .wrapping_add(epoch)
        .wrapping_add((op as u64) << 48);
    let mut z = stream.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// A permanent one-worker partition starting at a given epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// Partitioned worker.
    pub worker: usize,
    /// First epoch (0-based push index) the partition is in effect.
    pub from_epoch: u64,
}

/// Seeded description of how the network misbehaves.
#[derive(Debug, Clone, PartialEq)]
pub struct NetChaosPlan {
    /// Seed for every per-`(worker, epoch, op)` decision.
    pub seed: u64,
    /// Probability a push is dropped.
    pub drop_rate: f64,
    /// Probability a push is delayed by [`delay`](NetChaosPlan::delay).
    pub delay_rate: f64,
    /// Delay applied to delayed pushes.
    pub delay: Duration,
    /// Probability a push is wire-duplicated.
    pub duplicate_rate: f64,
    /// Probability a push arrives corrupt (CRC-rejected at the server).
    pub corrupt_rate: f64,
    /// Optional permanent partition of one worker.
    pub partition: Option<Partition>,
}

impl NetChaosPlan {
    /// The CLI's `--net-chaos SEED` recipe: a moderately hostile network —
    /// 10% drops, 10% delays of 5 ms, 15% duplicates, 5% corruption, no
    /// partition.
    pub fn from_seed(seed: u64) -> NetChaosPlan {
        NetChaosPlan {
            seed,
            drop_rate: 0.10,
            delay_rate: 0.10,
            delay: Duration::from_millis(5),
            duplicate_rate: 0.15,
            corrupt_rate: 0.05,
            partition: None,
        }
    }

    /// A plan with every rate at zero (chaos plumbing with no chaos).
    pub fn quiet(seed: u64) -> NetChaosPlan {
        NetChaosPlan {
            seed,
            drop_rate: 0.0,
            delay_rate: 0.0,
            delay: Duration::ZERO,
            duplicate_rate: 0.0,
            corrupt_rate: 0.0,
            partition: None,
        }
    }

    /// Sets the permanent partition.
    pub fn with_partition(mut self, worker: usize, from_epoch: u64) -> NetChaosPlan {
        self.partition = Some(Partition { worker, from_epoch });
        self
    }
}

/// Counters for every fault the wrapper injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosStats {
    /// Pushes swallowed by the drop schedule.
    pub dropped: u64,
    /// Pushes delivered late.
    pub delayed: u64,
    /// Wire duplicates delivered.
    pub duplicated: u64,
    /// Pushes converted to CRC failures.
    pub corrupted: u64,
    /// Pushes swallowed by the partition.
    pub partitioned: u64,
}

/// A [`Transport`] decorator that injects the seeded fault schedule of a
/// [`NetChaosPlan`]. See the module docs for semantics.
pub struct ChaosTransport {
    inner: Arc<dyn Transport>,
    plan: NetChaosPlan,
    /// Per-worker count of push *attempts* — the epoch coordinate of the
    /// fault schedule (supervised training pushes once per epoch).
    push_epochs: Vec<AtomicU64>,
    /// Set when a corrupt push was injected; the next `collect_timeout`
    /// for that worker reports it.
    pending_corrupt: Vec<AtomicBool>,
    dropped: AtomicU64,
    delayed: AtomicU64,
    duplicated: AtomicU64,
    corrupted: AtomicU64,
    partitioned: AtomicU64,
}

impl ChaosTransport {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: Arc<dyn Transport>, plan: NetChaosPlan) -> ChaosTransport {
        let workers = inner.workers();
        ChaosTransport {
            inner,
            plan,
            push_epochs: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            pending_corrupt: (0..workers).map(|_| AtomicBool::new(false)).collect(),
            dropped: AtomicU64::new(0),
            delayed: AtomicU64::new(0),
            duplicated: AtomicU64::new(0),
            corrupted: AtomicU64::new(0),
            partitioned: AtomicU64::new(0),
        }
    }

    /// Injected-fault counters so far.
    pub fn stats(&self) -> ChaosStats {
        ChaosStats {
            // ordering: Relaxed — statistics read for reports/tests.
            dropped: self.dropped.load(Ordering::Relaxed),
            // ordering: Relaxed — statistic (see above).
            delayed: self.delayed.load(Ordering::Relaxed),
            // ordering: Relaxed — statistic (see above).
            duplicated: self.duplicated.load(Ordering::Relaxed),
            // ordering: Relaxed — statistic (see above).
            corrupted: self.corrupted.load(Ordering::Relaxed),
            // ordering: Relaxed — statistic (see above).
            partitioned: self.partitioned.load(Ordering::Relaxed),
        }
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &Arc<dyn Transport> {
        &self.inner
    }

    fn roll(&self, worker: usize, epoch: u64, op: u8) -> f64 {
        chaos_roll(self.plan.seed, worker, epoch, op)
    }

    fn partition_for(&self, worker: usize) -> Option<Partition> {
        self.plan.partition.filter(|p| p.worker == worker)
    }
}

impl Transport for ChaosTransport {
    fn publish(&self, src: &[f32]) {
        self.inner.publish(src);
    }

    fn pull(&self, worker: usize, dst: &mut [f32]) {
        if let Some(p) = self.partition_for(worker) {
            // ordering: Relaxed — epoch counter is a statistic-grade
            // coordinate; exact interleaving tolerance is documented.
            if self.push_epochs[worker].load(Ordering::Relaxed) >= p.from_epoch {
                return; // unreachable server: dst keeps stale data
            }
        }
        self.inner.pull(worker, dst);
    }

    fn push(&self, worker: usize, src: &[f32]) {
        // ordering: Relaxed — the counter is this worker's own epoch
        // coordinate; only this worker's thread increments it.
        let epoch = self.push_epochs[worker].fetch_add(1, Ordering::Relaxed);
        if let Some(p) = self.partition_for(worker) {
            if epoch >= p.from_epoch {
                // ordering: Relaxed — statistic.
                self.partitioned.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        if self.roll(worker, epoch, OP_DROP) < self.plan.drop_rate {
            // ordering: Relaxed — statistic.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if self.roll(worker, epoch, OP_CORRUPT) < self.plan.corrupt_rate {
            // The frame "arrives" but fails its CRC: nothing is applied
            // and the server-side collect reports Corrupt once.
            // ordering: Relaxed — statistic.
            self.corrupted.fetch_add(1, Ordering::Relaxed);
            // ordering: Relaxed — flag is consumed by the server thread's
            // collect; the supervisor's retry loop tolerates either
            // ordering of flag-set vs timeout.
            self.pending_corrupt[worker].store(true, Ordering::Relaxed);
            return;
        }
        if self.roll(worker, epoch, OP_DELAY) < self.plan.delay_rate {
            // ordering: Relaxed — statistic.
            self.delayed.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(self.plan.delay);
        }
        self.inner.push(worker, src);
        if self.roll(worker, epoch, OP_DUPLICATE) < self.plan.duplicate_rate {
            // ordering: Relaxed — statistic.
            self.duplicated.fetch_add(1, Ordering::Relaxed);
            self.inner.push_duplicate(worker, src);
        }
    }

    fn collect(&self, worker: usize, dst: &mut [f32]) {
        self.inner.collect(worker, dst);
    }

    fn collect_timeout(
        &self,
        worker: usize,
        dst: &mut [f32],
        timeout: Duration,
    ) -> Result<(), CommError> {
        if let Some(p) = self.partition_for(worker) {
            // ordering: Relaxed — see `pull`.
            if self.push_epochs[worker].load(Ordering::Relaxed) > p.from_epoch {
                return Err(CommError::PartitionedLink);
            }
        }
        // ordering: Relaxed — one-shot flag; a race with the injecting
        // push only shifts which retry observes the corruption.
        if self.pending_corrupt[worker].swap(false, Ordering::Relaxed) {
            return Err(CommError::Corrupt);
        }
        self.inner.collect_timeout(worker, dst, timeout)
    }

    fn wire_bytes(&self) -> u64 {
        self.inner.wire_bytes()
    }

    fn wire_bytes_by_dir(&self) -> (u64, u64) {
        self.inner.wire_bytes_by_dir()
    }

    fn workers(&self) -> usize {
        self.inner.workers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{CommShared, Precision};

    fn shared(workers: usize, len: usize) -> Arc<dyn Transport> {
        Arc::new(CommShared::new(workers, len, len, Precision::Fp32))
    }

    #[test]
    fn rolls_are_deterministic_and_uniformish() {
        assert_eq!(chaos_roll(7, 1, 3, OP_DROP), chaos_roll(7, 1, 3, OP_DROP));
        assert_ne!(chaos_roll(7, 1, 3, OP_DROP), chaos_roll(8, 1, 3, OP_DROP));
        assert_ne!(chaos_roll(7, 1, 3, OP_DROP), chaos_roll(7, 2, 3, OP_DROP));
        assert_ne!(chaos_roll(7, 1, 3, OP_DROP), chaos_roll(7, 1, 4, OP_DROP));
        assert_ne!(chaos_roll(7, 1, 3, OP_DROP), chaos_roll(7, 1, 3, OP_DELAY));
        let mean = (0..1000)
            .map(|e| chaos_roll(11, 0, e, OP_DROP))
            .sum::<f64>()
            / 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn quiet_plan_is_transparent() {
        let t = ChaosTransport::new(shared(2, 8), NetChaosPlan::quiet(1));
        let data = [1.0f32; 8];
        t.publish(&data);
        let mut dst = [0f32; 8];
        t.pull(0, &mut dst);
        assert_eq!(dst, data);
        t.push(0, &data);
        let mut got = [0f32; 8];
        t.collect_timeout(0, &mut got, Duration::from_secs(1))
            .unwrap();
        assert_eq!(got, data);
        assert_eq!(t.stats(), ChaosStats::default());
    }

    #[test]
    fn certain_drop_swallows_every_push() {
        let mut plan = NetChaosPlan::quiet(3);
        plan.drop_rate = 1.0;
        let t = ChaosTransport::new(shared(1, 4), plan);
        t.push(0, &[1.0; 4]);
        let mut dst = [0f32; 4];
        assert_eq!(
            t.collect_timeout(0, &mut dst, Duration::from_millis(20)),
            Err(CommError::Timeout)
        );
        assert_eq!(t.stats().dropped, 1);
    }

    #[test]
    fn corrupt_push_reports_once_then_times_out() {
        let mut plan = NetChaosPlan::quiet(4);
        plan.corrupt_rate = 1.0;
        let t = ChaosTransport::new(shared(1, 4), plan);
        t.push(0, &[1.0; 4]);
        let mut dst = [0f32; 4];
        assert_eq!(
            t.collect_timeout(0, &mut dst, Duration::from_millis(20)),
            Err(CommError::Corrupt),
            "first attempt sees the CRC failure"
        );
        assert_eq!(
            t.collect_timeout(0, &mut dst, Duration::from_millis(20)),
            Err(CommError::Timeout),
            "retry finds nothing: corrupt degraded to dropped"
        );
        assert_eq!(t.stats().corrupted, 1);
    }

    #[test]
    fn partition_cuts_push_pull_and_collect() {
        let plan = NetChaosPlan::quiet(5).with_partition(0, 1);
        let t = ChaosTransport::new(shared(2, 4), plan);
        // Epoch 0: before the partition, everything flows.
        t.push(0, &[1.0; 4]);
        let mut dst = [0f32; 4];
        t.collect_timeout(0, &mut dst, Duration::from_secs(1))
            .unwrap();
        assert_eq!(dst, [1.0; 4]);
        // Epoch 1: partitioned.
        t.publish(&[9.0; 4]);
        t.push(0, &[2.0; 4]);
        let mut pulled = [0f32; 4];
        t.pull(0, &mut pulled);
        assert_eq!(pulled, [0f32; 4], "pull no longer reaches the server");
        assert_eq!(
            t.collect_timeout(0, &mut dst, Duration::from_millis(20)),
            Err(CommError::PartitionedLink)
        );
        // The other worker is untouched.
        t.pull(1, &mut pulled);
        assert_eq!(pulled, [9.0; 4]);
        assert_eq!(t.stats().partitioned, 1);
    }

    #[test]
    fn duplicate_roll_calls_push_duplicate() {
        struct CountingInner {
            inner: CommShared,
            dups: AtomicU64,
        }
        impl Transport for CountingInner {
            fn publish(&self, src: &[f32]) {
                self.inner.publish(src);
            }
            fn pull(&self, w: usize, dst: &mut [f32]) {
                self.inner.pull(w, dst);
            }
            fn push(&self, w: usize, src: &[f32]) {
                self.inner.push(w, src);
            }
            fn push_duplicate(&self, _w: usize, _src: &[f32]) {
                // ordering: Relaxed — test statistic.
                self.dups.fetch_add(1, Ordering::Relaxed);
            }
            fn collect(&self, w: usize, dst: &mut [f32]) {
                self.inner.collect(w, dst);
            }
            fn collect_timeout(
                &self,
                w: usize,
                dst: &mut [f32],
                t: Duration,
            ) -> Result<(), CommError> {
                self.inner.collect_timeout(w, dst, t)
            }
            fn wire_bytes(&self) -> u64 {
                self.inner.wire_bytes()
            }
            fn wire_bytes_by_dir(&self) -> (u64, u64) {
                self.inner.wire_bytes_by_dir()
            }
            fn workers(&self) -> usize {
                self.inner.workers()
            }
        }
        let inner = Arc::new(CountingInner {
            inner: CommShared::new(1, 4, 4, Precision::Fp32),
            dups: AtomicU64::new(0),
        });
        let mut plan = NetChaosPlan::quiet(6);
        plan.duplicate_rate = 1.0;
        let t = ChaosTransport::new(inner.clone(), plan);
        for _ in 0..5 {
            t.push(0, &[1.0; 4]);
            let mut dst = [0f32; 4];
            t.collect_timeout(0, &mut dst, Duration::from_secs(1))
                .unwrap();
        }
        // ordering: Relaxed — test statistic.
        assert_eq!(inner.dups.load(Ordering::Relaxed), 5);
        assert_eq!(t.stats().duplicated, 5);
    }

    #[test]
    fn same_seed_same_fault_schedule() {
        let schedule = |seed: u64| {
            let plan = NetChaosPlan {
                drop_rate: 0.3,
                corrupt_rate: 0.2,
                ..NetChaosPlan::quiet(seed)
            };
            let t = ChaosTransport::new(shared(2, 4), plan);
            for e in 0..20 {
                for w in 0..2 {
                    t.push(w, &[e as f32; 4]);
                    let mut dst = [0f32; 4];
                    let _ = t.collect_timeout(w, &mut dst, Duration::from_millis(1));
                }
            }
            t.stats()
        };
        assert_eq!(schedule(42), schedule(42));
        assert_ne!(schedule(42), schedule(43));
    }
}
