//! The COMM layer of HCC-MF (§3.4–3.5 of the paper).
//!
//! COMM connects the parameter server to its workers. The paper implements
//! it with shared pinned memory mapped into every process, one "pull buffer"
//! per worker (server → worker) and one "push buffer" (worker → server), so
//! a transfer is a single copy. This crate reproduces that design in-process:
//!
//! * [`strategy`] — the three communication optimization strategies:
//!   transmit-P&Q (unoptimized), "Transmitting Q matrix only", and
//!   "Transmitting FP16 Data" on top of Q-only ("half-Q"), with exact
//!   volume accounting used by both the real engine and the simulator.
//! * [`buffer`] — the shared pull/push buffers.
//! * [`transport`] — two interchangeable transports: [`CommShared`] (the
//!   paper's COMM: single-copy shared memory) and [`CommP`] (the ps-lite
//!   style baseline: serialize → channel → staging copy → destination copy),
//!   which Table 5 compares.
//! * [`pipeline`] — the asynchronous pull→compute→push pipeline used by
//!   Strategy 3 ("Asynchronous Computing-Transmission") to overlap
//!   communication with computation across multiple streams.
//! * [`frame`] — the length-prefixed, CRC-32-trailed wire frame codec the
//!   socket transport speaks (and the checkpoint footer reuses).
//! * [`socket`] — [`CommSocket`]: the same [`Transport`] contract over a
//!   Unix domain socket or loopback TCP with per-RPC deadlines, bounded
//!   retries, jittered reconnect backoff, and idempotent push dedup.
//! * [`delta`] — the row-delta payload codec that generalizes "Transmit Q
//!   only" to per-shard delta shipping: a push carries only the rows
//!   touched since the last publish.
//! * [`chaos`] — [`ChaosTransport`]: a seeded, deterministic
//!   drop/delay/duplicate/corrupt/partition wrapper around any transport.
//! * [`backoff`] — the jittered-exponential [`Backoff`] ladder shared by
//!   every retry loop in the workspace.

//!
//! ```
//! use hcc_comm::{CommShared, Precision, Transport};
//!
//! let comm = CommShared::new(2, 4, 4, Precision::Fp32);
//! comm.publish(&[1.0, 2.0, 3.0, 4.0]);      // server → pull region
//! let mut local = [0f32; 4];
//! comm.pull(0, &mut local);                  // worker 0 reads it
//! comm.push(0, &local);                      // …and pushes back
//! let mut collected = [0f32; 4];
//! comm.collect(0, &mut collected);           // server merges
//! assert_eq!(collected, [1.0, 2.0, 3.0, 4.0]);
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod backoff;
pub mod buffer;
pub mod chaos;
pub mod delta;
pub mod frame;
pub mod pipeline;
pub mod socket;
pub mod strategy;
pub mod transport;

pub use backoff::Backoff;
pub use buffer::SharedBuffer;
pub use chaos::{ChaosStats, ChaosTransport, NetChaosPlan, Partition};
pub use delta::{apply_delta, delta_len, encode_delta, max_delta_len, DeltaError};
pub use frame::{crc32, Frame, FrameError, RpcKind};
pub use pipeline::{run_pipeline, PipelineStats};
pub use socket::{CommSocket, NetEvent, NetEventKind, NetStats, SocketConfig};
pub use strategy::TransferStrategy;
pub use transport::{CommError, CommP, CommShared, Payload, Precision, Transport};
