//! Shared pull/push buffers.
//!
//! The paper's COMM creates one shared-memory region per direction per
//! worker: the server writes the global feature matrix into a worker's
//! *pull buffer*, the worker writes its updated local matrix into its *push
//! buffer*, and the opposite side reads directly from the mapping — so one
//! transfer is exactly one copy. In-process, a `SharedBuffer` is an
//! `Arc<RwLock<Vec<f32>>>` with explicit copy-in/copy-out operations, which
//! keeps the copy count observable (the Table 5 benches count bytes moved).

use parking_lot::RwLock;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Transfers at or above this many floats use the multi-threaded copy path
/// (the paper's "shared pinned memory and multi-threaded copy", §3.5).
const PARALLEL_COPY_THRESHOLD: usize = 1 << 20;
/// Chunk size per copy task (1 MiB of f32).
const PARALLEL_COPY_CHUNK: usize = 1 << 18;

/// A fixed-capacity shared float buffer with copy accounting.
#[derive(Debug, Clone)]
pub struct SharedBuffer {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    data: RwLock<Vec<f32>>,
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
}

impl SharedBuffer {
    /// Allocates a zeroed buffer of `len` floats.
    pub fn new(len: usize) -> SharedBuffer {
        SharedBuffer {
            inner: Arc::new(Inner {
                data: RwLock::new(vec![0.0; len]),
                bytes_written: AtomicU64::new(0),
                bytes_read: AtomicU64::new(0),
            }),
        }
    }

    /// Buffer length in floats.
    pub fn len(&self) -> usize {
        self.inner.data.read().len()
    }

    /// True when the buffer holds no floats.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies `src` into the buffer starting at float offset `offset`.
    ///
    /// # Panics
    /// Panics if the region exceeds the buffer.
    pub fn write(&self, offset: usize, src: &[f32]) {
        let mut guard = self.inner.data.write();
        let dst = &mut guard[offset..offset + src.len()];
        if src.len() >= PARALLEL_COPY_THRESHOLD {
            dst.par_chunks_mut(PARALLEL_COPY_CHUNK)
                .zip(src.par_chunks(PARALLEL_COPY_CHUNK))
                .for_each(|(d, s)| d.copy_from_slice(s));
        } else {
            dst.copy_from_slice(src);
        }
        // ordering: Relaxed — wire-byte statistic; read only for reports
        // after the epoch's scope join, never to synchronize data.
        self.inner
            .bytes_written
            .fetch_add(src.len() as u64 * 4, Ordering::Relaxed);
    }

    /// Copies the region at `offset` into `dst`.
    ///
    /// # Panics
    /// Panics if the region exceeds the buffer.
    pub fn read(&self, offset: usize, dst: &mut [f32]) {
        let guard = self.inner.data.read();
        let src = &guard[offset..offset + dst.len()];
        if dst.len() >= PARALLEL_COPY_THRESHOLD {
            dst.par_chunks_mut(PARALLEL_COPY_CHUNK)
                .zip(src.par_chunks(PARALLEL_COPY_CHUNK))
                .for_each(|(d, s)| d.copy_from_slice(s));
        } else {
            dst.copy_from_slice(src);
        }
        // ordering: Relaxed — wire-byte statistic (see `write`).
        self.inner
            .bytes_read
            .fetch_add(dst.len() as u64 * 4, Ordering::Relaxed);
    }

    /// Runs `f` with a read view of the whole buffer *without copying* — the
    /// "feature matrix stored directly in shared memory" fast path.
    pub fn with_read<R>(&self, f: impl FnOnce(&[f32]) -> R) -> R {
        f(&self.inner.data.read())
    }

    /// Runs `f` with a write view of the whole buffer without copying.
    pub fn with_write<R>(&self, f: impl FnOnce(&mut [f32]) -> R) -> R {
        f(&mut self.inner.data.write())
    }

    /// Total bytes copied in by [`write`](Self::write).
    pub fn bytes_written(&self) -> u64 {
        // ordering: Relaxed — statistic read; exactness across threads is
        // not required mid-epoch.
        self.inner.bytes_written.load(Ordering::Relaxed)
    }

    /// Total bytes copied out by [`read`](Self::read).
    pub fn bytes_read(&self) -> u64 {
        // ordering: Relaxed — statistic read (see `bytes_written`).
        self.inner.bytes_read.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrips() {
        let buf = SharedBuffer::new(8);
        buf.write(2, &[1.0, 2.0, 3.0]);
        let mut out = [0f32; 3];
        buf.read(2, &mut out);
        assert_eq!(out, [1.0, 2.0, 3.0]);
        let mut head = [9f32; 2];
        buf.read(0, &mut head);
        assert_eq!(head, [0.0, 0.0]);
    }

    #[test]
    fn clones_share_storage() {
        let a = SharedBuffer::new(4);
        let b = a.clone();
        a.write(0, &[5.0]);
        let mut out = [0f32; 1];
        b.read(0, &mut out);
        assert_eq!(out, [5.0]);
    }

    #[test]
    fn byte_accounting() {
        let buf = SharedBuffer::new(10);
        buf.write(0, &[0.0; 10]);
        buf.write(0, &[0.0; 4]);
        assert_eq!(buf.bytes_written(), 56);
        let mut out = [0f32; 10];
        buf.read(0, &mut out);
        assert_eq!(buf.bytes_read(), 40);
    }

    #[test]
    fn zero_copy_views() {
        let buf = SharedBuffer::new(3);
        buf.with_write(|s| s.copy_from_slice(&[1.0, 2.0, 3.0]));
        let sum = buf.with_read(|s| s.iter().sum::<f32>());
        assert_eq!(sum, 6.0);
        // Views don't count as copies.
        assert_eq!(buf.bytes_written(), 0);
        assert_eq!(buf.bytes_read(), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_write_panics() {
        let buf = SharedBuffer::new(2);
        buf.write(1, &[1.0, 2.0]);
    }

    #[test]
    fn large_parallel_copies_roundtrip() {
        let len = (1 << 20) + 13; // over the parallel threshold, ragged tail
        let buf = SharedBuffer::new(len);
        let src: Vec<f32> = (0..len).map(|j| (j % 1021) as f32).collect();
        buf.write(0, &src);
        let mut out = vec![0f32; len];
        buf.read(0, &mut out);
        assert_eq!(out, src);
        assert_eq!(buf.bytes_written(), len as u64 * 4);
    }

    #[test]
    fn concurrent_disjoint_writes() {
        let buf = SharedBuffer::new(64);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let buf = buf.clone();
                scope.spawn(move || {
                    buf.write(t * 16, &[t as f32; 16]);
                });
            }
        });
        let mut out = vec![0f32; 64];
        buf.read(0, &mut out);
        for t in 0..4 {
            assert!(out[t * 16..(t + 1) * 16].iter().all(|&v| v == t as f32));
        }
    }
}
