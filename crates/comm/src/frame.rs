//! Length-prefixed wire frames for the socket transport.
//!
//! Every RPC between a worker and the server crosses the socket as one
//! frame:
//!
//! ```text
//! ┌───────┬──────┬──────┬────────┬───────┬───────┬─────────┬─────────┬───────┐
//! │ magic │ kind │ prec │ worker │ epoch │ chunk │ len     │ payload │ crc32 │
//! │ 4 B   │ 1 B  │ 1 B  │ u16 LE │ u32LE │ u32LE │ u32 LE  │ len B   │ u32LE │
//! │ "HCF1"│      │      │        │       │       │ (bytes) │         │       │
//! └───────┴──────┴──────┴────────┴───────┴───────┴─────────┴─────────┴───────┘
//! ```
//!
//! The header is [`HEADER_LEN`] bytes; the CRC-32/IEEE trailer covers
//! everything after the magic (kind through payload), so a flipped bit
//! anywhere in the metadata or data is caught before the payload is
//! applied. Payloads are f32 at the API and optionally IEEE binary16 on
//! the wire, reusing the [`Precision`] codec the shared-memory transports
//! already speak. The length prefix is capped at [`MAX_PAYLOAD_BYTES`] so
//! a corrupt prefix can never coerce the receiver into a giant
//! allocation.
//!
//! The CRC implementation here is the single source of truth for the
//! workspace — the checkpoint-v2 footer (`hcc_mf::checkpoint`) reuses
//! [`crc32`] rather than keeping its own copy of the table.

use crate::transport::Precision;
use hcc_sgd::fp16;

/// Frame magic: "HCC frame, version 1".
pub const MAGIC: [u8; 4] = *b"HCF1";

/// Fixed header length in bytes (magic through the length prefix).
pub const HEADER_LEN: usize = 20;

/// CRC trailer length in bytes.
pub const TRAILER_LEN: usize = 4;

/// Hard cap on the payload length prefix (64 MiB). A corrupted or hostile
/// length prefix beyond this is rejected as [`FrameError::Oversized`]
/// instead of driving an allocation.
pub const MAX_PAYLOAD_BYTES: u32 = 1 << 26;

/// CRC-32/IEEE table (reflected polynomial 0xEDB8_8320), built at compile
/// time. Shared by the wire frames here and the checkpoint-v2 footer.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32/IEEE over `data` (init `0xFFFF_FFFF`, final complement; check
/// value `crc32(b"123456789") == 0xCBF4_3926`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Which RPC a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpcKind {
    /// Worker → server: "send me the published data" (empty payload);
    /// server → worker: the published data.
    Pull,
    /// Worker → server: this worker's updated data.
    Push,
    /// Server → worker: push acknowledgment / control. The `chunk` field
    /// carries the status code (see [`crate::socket`]).
    Sync,
    /// Worker → server shard: a *delta-encoded* push — only the rows this
    /// worker touched since the last publish, in the
    /// [`crate::delta`] layout, addressed to one shard of a sharded
    /// parameter server. Shares `Push`'s (worker, epoch, chunk)
    /// idempotency key so retransmitted deltas dedup identically.
    DeltaPush,
}

impl RpcKind {
    /// Wire byte for this kind.
    pub fn as_u8(self) -> u8 {
        match self {
            RpcKind::Pull => 1,
            RpcKind::Push => 2,
            RpcKind::Sync => 3,
            RpcKind::DeltaPush => 4,
        }
    }

    /// Parses a wire byte.
    pub fn from_u8(b: u8) -> Result<RpcKind, FrameError> {
        match b {
            1 => Ok(RpcKind::Pull),
            2 => Ok(RpcKind::Push),
            3 => Ok(RpcKind::Sync),
            4 => Ok(RpcKind::DeltaPush),
            other => Err(FrameError::BadKind(other)),
        }
    }
}

fn precision_to_u8(p: Precision) -> u8 {
    match p {
        Precision::Fp32 => 0,
        Precision::Fp16 => 1,
    }
}

fn precision_from_u8(b: u8) -> Result<Precision, FrameError> {
    match b {
        0 => Ok(Precision::Fp32),
        1 => Ok(Precision::Fp16),
        other => Err(FrameError::BadPrecision(other)),
    }
}

/// Everything that can go wrong parsing a frame. IO errors are not here —
/// the socket layer maps those to `CommError` itself; this taxonomy covers
/// malformed bytes only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The first four bytes are not [`MAGIC`].
    BadMagic([u8; 4]),
    /// Unknown RPC kind byte.
    BadKind(u8),
    /// Unknown precision byte.
    BadPrecision(u8),
    /// The buffer ends before the declared frame does.
    Truncated {
        /// Bytes the declared frame requires.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The length prefix exceeds [`MAX_PAYLOAD_BYTES`] (or is not a whole
    /// number of wire elements).
    Oversized {
        /// Declared payload length in bytes.
        len: u32,
        /// The cap it violated.
        max: u32,
    },
    /// The CRC trailer does not match the frame body.
    BadCrc {
        /// CRC carried in the trailer.
        expected: u32,
        /// CRC computed over the received body.
        got: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            FrameError::BadKind(b) => write!(f, "unknown RPC kind byte {b}"),
            FrameError::BadPrecision(b) => write!(f, "unknown precision byte {b}"),
            FrameError::Truncated { needed, got } => {
                write!(f, "truncated frame: need {needed} bytes, have {got}")
            }
            FrameError::Oversized { len, max } => {
                write!(f, "length prefix {len} exceeds cap {max}")
            }
            FrameError::BadCrc { expected, got } => {
                write!(
                    f,
                    "CRC mismatch: trailer {expected:#010x}, computed {got:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// One decoded RPC frame. Payload is f32 at this API regardless of the
/// wire precision.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// RPC kind.
    pub kind: RpcKind,
    /// Wire precision of the payload.
    pub precision: Precision,
    /// Originating (or addressed) worker.
    pub worker: u16,
    /// Training epoch the RPC belongs to — the idempotency key's coarse
    /// half.
    pub epoch: u32,
    /// Chunk index within the epoch (0 for whole-buffer RPCs); doubles as
    /// the status code on [`RpcKind::Sync`] frames.
    pub chunk: u32,
    /// Decoded payload.
    pub payload: Vec<f32>,
}

impl Frame {
    /// A payload-free control frame.
    pub fn control(kind: RpcKind, worker: u16, epoch: u32, chunk: u32) -> Frame {
        Frame {
            kind,
            precision: Precision::Fp32,
            worker,
            epoch,
            chunk,
            payload: Vec::new(),
        }
    }

    /// Serializes the frame, encoding the payload at `self.precision` and
    /// appending the CRC trailer.
    pub fn encode(&self) -> Vec<u8> {
        let payload_bytes = self.payload.len() * self.precision.bytes_per_element() as usize;
        let mut out = Vec::with_capacity(HEADER_LEN + payload_bytes + TRAILER_LEN);
        out.extend_from_slice(&MAGIC);
        out.push(self.kind.as_u8());
        out.push(precision_to_u8(self.precision));
        out.extend_from_slice(&self.worker.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.chunk.to_le_bytes());
        out.extend_from_slice(&(payload_bytes as u32).to_le_bytes());
        match self.precision {
            Precision::Fp32 => {
                for &v in &self.payload {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            Precision::Fp16 => {
                let mut half = vec![0u16; self.payload.len()];
                fp16::encode_slice(&self.payload, &mut half);
                for h in half {
                    out.extend_from_slice(&h.to_le_bytes());
                }
            }
        }
        let crc = crc32(&out[4..]);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses a complete frame from `buf`. `buf` must contain exactly one
    /// frame (header + payload + trailer); trailing bytes are a
    /// [`FrameError::Truncated`]-style length disagreement caught by the
    /// byte count check.
    pub fn decode(buf: &[u8]) -> Result<Frame, FrameError> {
        if buf.len() < HEADER_LEN {
            return Err(FrameError::Truncated {
                needed: HEADER_LEN,
                got: buf.len(),
            });
        }
        let magic = [buf[0], buf[1], buf[2], buf[3]];
        if magic != MAGIC {
            return Err(FrameError::BadMagic(magic));
        }
        let kind = RpcKind::from_u8(buf[4])?;
        let precision = precision_from_u8(buf[5])?;
        let worker = u16::from_le_bytes([buf[6], buf[7]]);
        let epoch = u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]);
        let chunk = u32::from_le_bytes([buf[12], buf[13], buf[14], buf[15]]);
        let payload_bytes = u32::from_le_bytes([buf[16], buf[17], buf[18], buf[19]]);
        let bpe = precision.bytes_per_element() as u32;
        if payload_bytes > MAX_PAYLOAD_BYTES || payload_bytes % bpe != 0 {
            return Err(FrameError::Oversized {
                len: payload_bytes,
                max: MAX_PAYLOAD_BYTES,
            });
        }
        let total = HEADER_LEN + payload_bytes as usize + TRAILER_LEN;
        if buf.len() < total {
            return Err(FrameError::Truncated {
                needed: total,
                got: buf.len(),
            });
        }
        let body = &buf[4..HEADER_LEN + payload_bytes as usize];
        let trailer_at = HEADER_LEN + payload_bytes as usize;
        let expected = u32::from_le_bytes([
            buf[trailer_at],
            buf[trailer_at + 1],
            buf[trailer_at + 2],
            buf[trailer_at + 3],
        ]);
        let got = crc32(body);
        if expected != got {
            return Err(FrameError::BadCrc { expected, got });
        }
        let wire = &buf[HEADER_LEN..trailer_at];
        let payload = match precision {
            Precision::Fp32 => wire
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect(),
            Precision::Fp16 => {
                let half: Vec<u16> = wire
                    .chunks_exact(2)
                    .map(|c| u16::from_le_bytes([c[0], c[1]]))
                    .collect();
                let mut out = vec![0f32; half.len()];
                fp16::decode_slice(&half, &mut out);
                out
            }
        };
        Ok(Frame {
            kind,
            precision,
            worker,
            epoch,
            chunk,
            payload,
        })
    }

    /// Validates a raw header and returns the number of bytes that follow
    /// it (payload + trailer) — what a streaming reader must read next.
    /// Catches bad magic and oversized/misaligned length prefixes before
    /// any allocation.
    pub fn body_len(header: &[u8; HEADER_LEN]) -> Result<usize, FrameError> {
        let magic = [header[0], header[1], header[2], header[3]];
        if magic != MAGIC {
            return Err(FrameError::BadMagic(magic));
        }
        let precision = precision_from_u8(header[5])?;
        let payload_bytes = u32::from_le_bytes([header[16], header[17], header[18], header[19]]);
        let bpe = precision.bytes_per_element() as u32;
        if payload_bytes > MAX_PAYLOAD_BYTES || payload_bytes % bpe != 0 {
            return Err(FrameError::Oversized {
                len: payload_bytes,
                max: MAX_PAYLOAD_BYTES,
            });
        }
        Ok(payload_bytes as usize + TRAILER_LEN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(precision: Precision) -> Frame {
        Frame {
            kind: RpcKind::Push,
            precision,
            worker: 3,
            epoch: 17,
            chunk: 2,
            payload: vec![0.5, -1.25, 3.0, 0.0],
        }
    }

    #[test]
    fn crc32_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fp32_roundtrip_is_exact() {
        let f = sample(Precision::Fp32);
        let decoded = Frame::decode(&f.encode()).unwrap();
        assert_eq!(decoded, f);
    }

    #[test]
    fn fp16_roundtrip_quantizes() {
        let f = sample(Precision::Fp16);
        let decoded = Frame::decode(&f.encode()).unwrap();
        // These values are exactly representable in binary16.
        assert_eq!(decoded.payload, f.payload);
        assert_eq!(decoded.kind, RpcKind::Push);
    }

    #[test]
    fn control_frames_are_empty() {
        let f = Frame::control(RpcKind::Sync, 1, 9, 0);
        let bytes = f.encode();
        assert_eq!(bytes.len(), HEADER_LEN + TRAILER_LEN);
        assert_eq!(Frame::decode(&bytes).unwrap(), f);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample(Precision::Fp32).encode();
        bytes[0] = b'X';
        assert!(matches!(
            Frame::decode(&bytes),
            Err(FrameError::BadMagic(_))
        ));
    }

    #[test]
    fn bad_kind_and_precision_rejected() {
        let mut bytes = sample(Precision::Fp32).encode();
        bytes[4] = 0xEE;
        assert_eq!(Frame::decode(&bytes), Err(FrameError::BadKind(0xEE)));
        let mut bytes = sample(Precision::Fp32).encode();
        bytes[5] = 9;
        assert_eq!(Frame::decode(&bytes), Err(FrameError::BadPrecision(9)));
    }

    #[test]
    fn delta_push_roundtrips_and_first_unused_kind_byte_rejected() {
        let f = Frame {
            kind: RpcKind::DeltaPush,
            ..sample(Precision::Fp32)
        };
        let bytes = f.encode();
        assert_eq!(bytes[4], 4, "DeltaPush wire byte");
        assert_eq!(Frame::decode(&bytes).unwrap(), f);
        // Byte 5 is the first unassigned kind: it must stay rejected so a
        // future kind cannot silently alias an old deployment's frames.
        let mut bytes = bytes;
        bytes[4] = 5;
        // Re-sign the body so only the kind byte is at fault, not the CRC.
        let crc_at = bytes.len() - TRAILER_LEN;
        let crc = crc32(&bytes[4..crc_at]);
        bytes[crc_at..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(Frame::decode(&bytes), Err(FrameError::BadKind(5)));
    }

    #[test]
    fn truncated_frame_rejected() {
        let bytes = sample(Precision::Fp32).encode();
        let cut = &bytes[..bytes.len() - 3];
        assert!(matches!(
            Frame::decode(cut),
            Err(FrameError::Truncated { .. })
        ));
        assert!(matches!(
            Frame::decode(&bytes[..7]),
            Err(FrameError::Truncated { .. })
        ));
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut bytes = sample(Precision::Fp32).encode();
        bytes[16..20].copy_from_slice(&(MAX_PAYLOAD_BYTES + 4).to_le_bytes());
        assert!(matches!(
            Frame::decode(&bytes),
            Err(FrameError::Oversized { .. })
        ));
        // Misaligned prefix (not a whole number of elements) is also
        // oversized-class: the declared length can't be trusted.
        let mut bytes = sample(Precision::Fp32).encode();
        bytes[16..20].copy_from_slice(&3u32.to_le_bytes());
        assert!(matches!(
            Frame::decode(&bytes),
            Err(FrameError::Oversized { .. })
        ));
    }

    #[test]
    fn body_len_validates_header() {
        let bytes = sample(Precision::Fp32).encode();
        let mut header = [0u8; HEADER_LEN];
        header.copy_from_slice(&bytes[..HEADER_LEN]);
        assert_eq!(Frame::body_len(&header).unwrap(), 16 + TRAILER_LEN);
        header[2] = 0;
        assert!(matches!(
            Frame::body_len(&header),
            Err(FrameError::BadMagic(_))
        ));
    }

    // Satellite: 256-case codec property — round-trip at both precisions,
    // plus rejection of truncation, bit flips, and oversized prefixes, on
    // arbitrary frames. The vendored proptest shim has a fixed default
    // case count, so the cases are driven explicitly through its Strategy
    // API with one deterministic seed per case.
    #[test]
    fn codec_roundtrip_and_rejection_256_cases() {
        use proptest::{collection, Strategy};
        use rand::SeedableRng;

        for case in 0u64..256 {
            let mut rng = proptest::TestRng::seed_from_u64(
                0xF8A3_C0DE ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let kind_b = (1u8..5).generate(&mut rng);
            let fp16_wire = (0u8..2).generate(&mut rng) == 1;
            let worker = (0u16..u16::MAX).generate(&mut rng);
            let epoch = (0u32..u32::MAX).generate(&mut rng);
            let chunk = (0u32..u32::MAX).generate(&mut rng);
            let payload = collection::vec(-1000.0f32..1000.0, 0..64).generate(&mut rng);
            let flip_at = (0usize..1 << 16).generate(&mut rng);
            let cut = (0usize..1 << 16).generate(&mut rng);

            let precision = if fp16_wire {
                Precision::Fp16
            } else {
                Precision::Fp32
            };
            let frame = Frame {
                kind: RpcKind::from_u8(kind_b).unwrap(),
                precision,
                worker,
                epoch,
                chunk,
                payload: payload.clone(),
            };
            let bytes = frame.encode();

            // Round-trip: exact at fp32, within binary16 tolerance at fp16.
            let decoded = Frame::decode(&bytes).unwrap();
            assert_eq!(decoded.kind, frame.kind);
            assert_eq!(decoded.worker, worker);
            assert_eq!(decoded.epoch, epoch);
            assert_eq!(decoded.chunk, chunk);
            assert_eq!(decoded.payload.len(), payload.len());
            for (a, b) in payload.iter().zip(&decoded.payload) {
                match precision {
                    Precision::Fp32 => assert_eq!(a, b),
                    Precision::Fp16 => assert!(
                        (a - b).abs() <= a.abs() / 1024.0 + 1e-6,
                        "case {case}: {a} vs {b}"
                    ),
                }
            }

            // Truncation: any strict prefix is rejected.
            let cut = cut % bytes.len();
            assert!(Frame::decode(&bytes[..cut]).is_err(), "case {case}");

            // Bit flip after the magic: CRC (or a field validator) rejects.
            let mut corrupt = bytes.clone();
            let at = 4 + flip_at % (corrupt.len() - 4);
            corrupt[at] ^= 0x01;
            assert!(Frame::decode(&corrupt).is_err(), "case {case} flip {at}");

            // Oversized prefix: rejected without reading the payload.
            let mut oversized = bytes.clone();
            oversized[16..20].copy_from_slice(&(MAX_PAYLOAD_BYTES + 1).to_le_bytes());
            assert!(
                matches!(Frame::decode(&oversized), Err(FrameError::Oversized { .. })),
                "case {case}"
            );
        }
    }
}
