//! `CommSocket`: the [`Transport`] trait over a real socket.
//!
//! The shared-memory transports assume server and workers share an address
//! space; this one speaks the [`crate::frame`] RPC protocol over a real
//! socket — a Unix domain socket by default ([`CommSocket::new`]) or a
//! loopback TCP listener ([`CommSocket::new_tcp`]), the multi-node wire.
//! Both speak the same `HCF1` frames through the same deadline / retry /
//! reconnect / dedup machinery; the only difference is how the stream is
//! dialed.
//!
//! Resilience model:
//!
//! * **Deadlines** — every RPC sets a read/write timeout on the stream; a
//!   silent peer costs at most `SocketConfig::rpc_timeout` per attempt.
//! * **Bounded retries** — an RPC that times out or draws a corrupt
//!   response is re-sent up to `rpc_retries` times; resent bytes are
//!   accounted as retransmissions.
//! * **Reconnect with jittered backoff** — a broken stream is re-dialed
//!   through a seeded [`Backoff`]; exhausting the attempt budget marks the
//!   link partitioned.
//! * **Idempotent pushes** — each push carries a per-worker sequence
//!   number in the frame's `epoch` field; the server applies a given
//!   `(worker, seq, chunk)` key at most once, so a retry whose original
//!   did land never double-applies. Duplicates are still acknowledged
//!   (the ack, not the apply, is what the retry needs).
//!
//! Failures degrade instead of propagating: a push that cannot be
//! delivered is dropped after the retry budget, and the supervisor sees it
//! as a missing collect — the same path a crashed worker takes.

use crate::backoff::Backoff;
use crate::frame::{Frame, RpcKind, HEADER_LEN};
use crate::transport::{CommError, Precision, Transport};
use parking_lot::{Condvar, Mutex, RwLock};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Where a [`CommSocket`] listens: a Unix socket path or a TCP address.
#[derive(Debug, Clone)]
enum SockAddr {
    Unix(PathBuf),
    Tcp(SocketAddr),
}

/// A listener over either socket family.
enum SockListener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl SockListener {
    fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()> {
        match self {
            SockListener::Unix(l) => l.set_nonblocking(nonblocking),
            SockListener::Tcp(l) => l.set_nonblocking(nonblocking),
        }
    }

    fn accept(&self) -> std::io::Result<SockStream> {
        match self {
            SockListener::Unix(l) => l.accept().map(|(s, _)| SockStream::Unix(s)),
            SockListener::Tcp(l) => l.accept().map(|(s, _)| SockStream::Tcp(s)),
        }
    }
}

/// A connected stream over either socket family. Both std types expose the
/// same blocking/timeout surface, so the RPC machinery is family-blind.
enum SockStream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl SockStream {
    fn connect(addr: &SockAddr) -> std::io::Result<SockStream> {
        match addr {
            SockAddr::Unix(path) => UnixStream::connect(path).map(SockStream::Unix),
            SockAddr::Tcp(sa) => {
                let s = TcpStream::connect(sa)?;
                // Request/response RPCs are latency-bound: never batch the
                // small request frames behind Nagle.
                s.set_nodelay(true)?;
                Ok(SockStream::Tcp(s))
            }
        }
    }

    fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()> {
        match self {
            SockStream::Unix(s) => s.set_nonblocking(nonblocking),
            SockStream::Tcp(s) => s.set_nonblocking(nonblocking),
        }
    }

    fn set_read_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        match self {
            SockStream::Unix(s) => s.set_read_timeout(t),
            SockStream::Tcp(s) => s.set_read_timeout(t),
        }
    }

    fn set_write_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        match self {
            SockStream::Unix(s) => s.set_write_timeout(t),
            SockStream::Tcp(s) => s.set_write_timeout(t),
        }
    }
}

impl Read for SockStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            SockStream::Unix(s) => s.read(buf),
            SockStream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for SockStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            SockStream::Unix(s) => s.write(buf),
            SockStream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            SockStream::Unix(s) => s.flush(),
            SockStream::Tcp(s) => s.flush(),
        }
    }
}

/// Push acknowledged and applied (or deduplicated).
const STATUS_OK: u32 = 0;
/// Push arrived but failed its integrity check: sender must retry.
const STATUS_CORRUPT: u32 = 1;

/// Monotonic counter so concurrent transports in one process get distinct
/// socket paths.
static SOCKET_ID: AtomicU64 = AtomicU64::new(0);

/// Tuning knobs for [`CommSocket`]'s resilience machinery.
#[derive(Debug, Clone)]
pub struct SocketConfig {
    /// Per-attempt RPC deadline (read and write).
    pub rpc_timeout: Duration,
    /// How many times one RPC may be attempted before giving up.
    pub rpc_retries: usize,
    /// How many re-dials a broken stream gets before the link counts as
    /// partitioned.
    pub reconnect_attempts: usize,
    /// First reconnect/retry delay.
    pub backoff_initial: Duration,
    /// Exponential growth factor for the backoff ladder.
    pub backoff_factor: f64,
    /// Jitter fraction (±) applied to every backoff delay.
    pub backoff_jitter: f64,
    /// Upper bound on any single backoff delay.
    pub backoff_max: Duration,
    /// Seed for the deterministic jitter stream (mixed with the worker id).
    pub seed: u64,
    /// Tag pushes as [`RpcKind::DeltaPush`]: the payload is a row-delta in
    /// the [`crate::delta`] layout rather than a full buffer. The server
    /// treats both kinds identically (same dedup/ack path) — the tag lets
    /// the *collector* know the buffer needs delta decoding.
    pub delta_push: bool,
}

impl Default for SocketConfig {
    fn default() -> SocketConfig {
        SocketConfig {
            rpc_timeout: Duration::from_millis(500),
            rpc_retries: 3,
            reconnect_attempts: 3,
            backoff_initial: Duration::from_millis(5),
            backoff_factor: 2.0,
            backoff_jitter: 0.25,
            backoff_max: Duration::from_millis(200),
            seed: 0x5EED,
            delta_push: false,
        }
    }
}

/// Cumulative resilience counters (monotonic over the transport's life).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetStats {
    /// Bytes sent again because a prior attempt timed out or was refused.
    pub retrans_bytes: u64,
    /// Pushes the server recognized as duplicates and did not re-apply.
    pub dedup_hits: u64,
    /// Successful re-dials of a broken stream.
    pub reconnects: u64,
}

/// What a drained network event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetEventKind {
    /// An RPC attempt failed and will be retried after `delay`.
    Retry {
        /// Why the attempt failed.
        cause: CommError,
        /// Bytes that will be re-sent.
        bytes: u64,
    },
    /// A broken stream was successfully re-dialed.
    Reconnect {
        /// 1-based attempt number that succeeded.
        attempt: u32,
    },
}

/// One resilience event, drained by the training loop for telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetEvent {
    /// Worker whose link produced the event.
    pub worker: usize,
    /// Retry or reconnect.
    pub kind: NetEventKind,
    /// Backoff delay that preceded (retry) or followed (reconnect) the
    /// event, in microseconds.
    pub delay_us: u64,
}

// ---------------------------------------------------------------------------
// Server state
// ---------------------------------------------------------------------------

struct SlotData {
    buf: Vec<f32>,
    /// Elements of `buf` the last push actually wrote. Delta pushes are
    /// variable-length, so a collect must not read stale tail elements
    /// from an earlier, longer push.
    len: usize,
    ready: bool,
    /// Idempotency key of the last applied push: `(seq, chunk)`.
    last_applied: Option<(u32, u32)>,
}

struct PushSlot {
    data: Mutex<SlotData>,
    cv: Condvar,
}

struct ServerState {
    precision: Precision,
    published: RwLock<Vec<f32>>,
    slots: Vec<PushSlot>,
    pull_bytes: AtomicU64,
    push_bytes: AtomicU64,
    dedup_hits: AtomicU64,
    shutdown: AtomicBool,
}

impl ServerState {
    /// Handles one accepted connection until EOF or an unrecoverable
    /// framing error.
    fn serve_conn(&self, mut stream: SockStream) {
        let mut header = [0u8; HEADER_LEN];
        loop {
            // ordering: Relaxed — shutdown flag; the dummy wake-up connect
            // in Drop provides the actual hand-off.
            if self.shutdown.load(Ordering::Relaxed) {
                return;
            }
            if stream.read_exact(&mut header).is_err() {
                return; // EOF / reset: the client will re-dial.
            }
            let body_len = match Frame::body_len(&header) {
                Ok(n) => n,
                // Corrupt header: frame boundaries are lost, so the only
                // safe recovery is dropping the connection.
                Err(_) => return,
            };
            let mut buf = vec![0u8; HEADER_LEN + body_len];
            buf[..HEADER_LEN].copy_from_slice(&header);
            if stream.read_exact(&mut buf[HEADER_LEN..]).is_err() {
                return;
            }
            let frame = match Frame::decode(&buf) {
                Ok(f) => f,
                Err(_) => {
                    // Framing held but the body failed its CRC: nack so
                    // the sender retries the same sequence number.
                    let worker = u16::from_le_bytes([header[6], header[7]]);
                    let epoch = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
                    let nack = Frame::control(RpcKind::Sync, worker, epoch, STATUS_CORRUPT);
                    if stream.write_all(&nack.encode()).is_err() {
                        return;
                    }
                    continue;
                }
            };
            match frame.kind {
                RpcKind::Pull => {
                    let payload = self.published.read().clone();
                    let reply = Frame {
                        kind: RpcKind::Pull,
                        precision: self.precision,
                        worker: frame.worker,
                        epoch: frame.epoch,
                        chunk: 0,
                        payload,
                    };
                    let bytes = reply.encode();
                    // ordering: Relaxed — wire-byte statistic.
                    self.pull_bytes
                        .fetch_add(bytes.len() as u64, Ordering::Relaxed);
                    if stream.write_all(&bytes).is_err() {
                        return;
                    }
                }
                // DeltaPush differs from Push only in what the payload
                // *means* (a row-delta vs a full buffer); on the server it
                // is plain bytes into the slot, same dedup, same ack.
                RpcKind::Push | RpcKind::DeltaPush => {
                    // ordering: Relaxed — wire-byte statistic.
                    self.push_bytes
                        .fetch_add(buf.len() as u64, Ordering::Relaxed);
                    let w = frame.worker as usize;
                    if w >= self.slots.len() {
                        return; // malformed peer: drop the connection.
                    }
                    let key = (frame.epoch, frame.chunk);
                    let slot = &self.slots[w];
                    {
                        let mut data = slot.data.lock();
                        if data.last_applied == Some(key) {
                            // Idempotent dedup: the original already
                            // applied; only the ack was lost.
                            // ordering: Relaxed — statistic.
                            self.dedup_hits.fetch_add(1, Ordering::Relaxed);
                        } else {
                            let n = frame.payload.len().min(data.buf.len());
                            data.buf[..n].copy_from_slice(&frame.payload[..n]);
                            data.len = n;
                            data.ready = true;
                            data.last_applied = Some(key);
                            slot.cv.notify_all();
                        }
                    }
                    let ack = Frame::control(RpcKind::Sync, frame.worker, frame.epoch, STATUS_OK);
                    if stream.write_all(&ack.encode()).is_err() {
                        return;
                    }
                }
                RpcKind::Sync => {
                    // Clients never send Sync; ignore.
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Client state
// ---------------------------------------------------------------------------

struct WorkerConn {
    stream: Option<SockStream>,
    /// Per-worker push sequence number (the idempotency key's coarse
    /// half; one push per supervised epoch makes it the epoch counter).
    push_seq: u32,
}

// ---------------------------------------------------------------------------
// CommSocket
// ---------------------------------------------------------------------------

/// A [`Transport`] over a Unix domain socket or loopback TCP with
/// deadlines, bounded retries, jittered reconnect backoff, and idempotent
/// pushes. See the module docs for the resilience model.
pub struct CommSocket {
    addr: SockAddr,
    cfg: SocketConfig,
    precision: Precision,
    state: Arc<ServerState>,
    conns: Vec<Mutex<WorkerConn>>,
    events: Mutex<Vec<NetEvent>>,
    retrans_bytes: AtomicU64,
    reconnects: AtomicU64,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    conn_handles: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl CommSocket {
    /// Binds a fresh loopback socket and starts the accept loop, with
    /// default resilience tuning.
    pub fn new(
        workers: usize,
        pull_len: usize,
        push_len: usize,
        precision: Precision,
    ) -> std::io::Result<CommSocket> {
        Self::with_config(
            workers,
            pull_len,
            push_len,
            precision,
            SocketConfig::default(),
        )
    }

    /// [`CommSocket::new`] with explicit [`SocketConfig`] tuning.
    pub fn with_config(
        workers: usize,
        pull_len: usize,
        push_len: usize,
        precision: Precision,
        cfg: SocketConfig,
    ) -> std::io::Result<CommSocket> {
        // ordering: Relaxed — the counter only needs uniqueness, not
        // synchronization with other memory.
        let id = SOCKET_ID.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("hcc-comm-{}-{}.sock", std::process::id(), id));
        let _ = std::fs::remove_file(&path);
        let listener = SockListener::Unix(UnixListener::bind(&path)?);
        Self::start(
            SockAddr::Unix(path),
            listener,
            workers,
            pull_len,
            push_len,
            precision,
            cfg,
        )
    }

    /// Binds a loopback TCP listener (an OS-assigned port on 127.0.0.1)
    /// instead of a Unix socket — the multi-node wire — with default
    /// resilience tuning.
    pub fn new_tcp(
        workers: usize,
        pull_len: usize,
        push_len: usize,
        precision: Precision,
    ) -> std::io::Result<CommSocket> {
        Self::with_config_tcp(
            workers,
            pull_len,
            push_len,
            precision,
            SocketConfig::default(),
        )
    }

    /// [`CommSocket::new_tcp`] with explicit [`SocketConfig`] tuning.
    pub fn with_config_tcp(
        workers: usize,
        pull_len: usize,
        push_len: usize,
        precision: Precision,
        cfg: SocketConfig,
    ) -> std::io::Result<CommSocket> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = SockAddr::Tcp(listener.local_addr()?);
        Self::start(
            addr,
            SockListener::Tcp(listener),
            workers,
            pull_len,
            push_len,
            precision,
            cfg,
        )
    }

    /// Shared tail of the constructors: spins up server state and the
    /// accept loop over an already-bound listener.
    fn start(
        addr: SockAddr,
        listener: SockListener,
        workers: usize,
        pull_len: usize,
        push_len: usize,
        precision: Precision,
        cfg: SocketConfig,
    ) -> std::io::Result<CommSocket> {
        let state = Arc::new(ServerState {
            precision,
            published: RwLock::new(vec![0f32; pull_len]),
            slots: (0..workers)
                .map(|_| PushSlot {
                    data: Mutex::new(SlotData {
                        buf: vec![0f32; push_len],
                        len: push_len,
                        ready: false,
                        last_applied: None,
                    }),
                    cv: Condvar::new(),
                })
                .collect(),
            pull_bytes: AtomicU64::new(0),
            push_bytes: AtomicU64::new(0),
            dedup_hits: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });
        let conn_handles: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        // Nonblocking accept loop: polling lets Drop stop the thread by
        // flag alone, with no wake-up connection that could itself fail
        // (e.g. when a test tears the socket file away mid-run).
        listener.set_nonblocking(true)?;
        let accept_state = state.clone();
        let accept_conns = conn_handles.clone();
        let accept_handle = std::thread::spawn(move || loop {
            // ordering: Relaxed — shutdown flag; the poll loop re-checks
            // within milliseconds, no data is protected by it.
            if accept_state.shutdown.load(Ordering::Relaxed) {
                return;
            }
            match listener.accept() {
                Ok(stream) => {
                    // Accepted sockets must block: serve_conn reads frames
                    // with plain read_exact.
                    if stream.set_nonblocking(false).is_err() {
                        continue;
                    }
                    let st = accept_state.clone();
                    let h = std::thread::spawn(move || st.serve_conn(stream));
                    accept_conns.lock().push(h);
                }
                Err(_) => std::thread::sleep(Duration::from_millis(2)),
            }
        });
        Ok(CommSocket {
            addr,
            cfg,
            precision,
            state,
            conns: (0..workers)
                .map(|_| {
                    Mutex::new(WorkerConn {
                        stream: None,
                        push_seq: 0,
                    })
                })
                .collect(),
            events: Mutex::new(Vec::new()),
            retrans_bytes: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            accept_handle: Some(accept_handle),
            conn_handles,
        })
    }

    /// Filesystem path of the listening socket (for diagnostics); `None`
    /// for a TCP transport.
    pub fn socket_path(&self) -> Option<&std::path::Path> {
        match &self.addr {
            SockAddr::Unix(path) => Some(path),
            SockAddr::Tcp(_) => None,
        }
    }

    /// TCP address of the listening socket; `None` for a Unix transport.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        match &self.addr {
            SockAddr::Unix(_) => None,
            SockAddr::Tcp(sa) => Some(*sa),
        }
    }

    /// Cumulative resilience counters.
    pub fn net_stats(&self) -> NetStats {
        NetStats {
            // ordering: Relaxed — statistics read for reports.
            retrans_bytes: self.retrans_bytes.load(Ordering::Relaxed),
            // ordering: Relaxed — statistic (see above).
            dedup_hits: self.state.dedup_hits.load(Ordering::Relaxed),
            // ordering: Relaxed — statistic (see above).
            reconnects: self.reconnects.load(Ordering::Relaxed),
        }
    }

    /// Removes and returns the resilience events accumulated since the
    /// last drain (the training loop forwards them to telemetry once per
    /// epoch, keeping the telemetry lanes single-writer).
    pub fn drain_net_events(&self) -> Vec<NetEvent> {
        std::mem::take(&mut *self.events.lock())
    }

    fn record_event(&self, ev: NetEvent) {
        self.events.lock().push(ev);
    }

    fn backoff_for(&self, worker: usize) -> Backoff {
        Backoff::new(self.cfg.backoff_initial, self.cfg.backoff_factor)
            .with_max(self.cfg.backoff_max)
            .with_jitter(
                self.cfg.seed ^ ((worker as u64) << 17),
                self.cfg.backoff_jitter,
            )
    }

    /// Ensures `conn` holds a live stream, re-dialing with backoff.
    /// Returns `false` when the attempt budget is exhausted (the link is
    /// partitioned for now).
    fn ensure_connected(&self, worker: usize, conn: &mut WorkerConn) -> bool {
        if conn.stream.is_some() {
            return true;
        }
        let mut backoff = self.backoff_for(worker);
        for attempt in 0..self.cfg.reconnect_attempts.max(1) {
            let delay = if attempt == 0 {
                Duration::ZERO // first dial is eager
            } else {
                backoff.next_delay()
            };
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
            if let Ok(stream) = SockStream::connect(&self.addr) {
                conn.stream = Some(stream);
                if attempt > 0 {
                    // ordering: Relaxed — statistic.
                    self.reconnects.fetch_add(1, Ordering::Relaxed);
                    self.record_event(NetEvent {
                        worker,
                        kind: NetEventKind::Reconnect {
                            attempt: attempt as u32,
                        },
                        delay_us: delay.as_micros() as u64,
                    });
                }
                return true;
            }
        }
        false
    }

    /// One framed request/response exchange with the deadline applied.
    fn exchange(
        stream: &mut SockStream,
        request: &[u8],
        timeout: Duration,
    ) -> std::io::Result<Result<Frame, CommError>> {
        let deadline = timeout.max(Duration::from_millis(1));
        stream.set_write_timeout(Some(deadline))?;
        stream.set_read_timeout(Some(deadline))?;
        stream.write_all(request)?;
        let mut header = [0u8; HEADER_LEN];
        stream.read_exact(&mut header)?;
        let body_len = match Frame::body_len(&header) {
            Ok(n) => n,
            Err(_) => return Ok(Err(CommError::Corrupt)),
        };
        let mut buf = vec![0u8; HEADER_LEN + body_len];
        buf[..HEADER_LEN].copy_from_slice(&header);
        stream.read_exact(&mut buf[HEADER_LEN..])?;
        match Frame::decode(&buf) {
            Ok(frame) => Ok(Ok(frame)),
            Err(_) => Ok(Err(CommError::Corrupt)),
        }
    }

    /// Runs one RPC with the full resilience stack: deadline per attempt,
    /// bounded retries, reconnect-on-breakage. Returns the response frame
    /// or the terminal error.
    fn rpc(&self, worker: usize, request: &Frame) -> Result<Frame, CommError> {
        let bytes = request.encode();
        let mut conn = self.conns[worker].lock();
        let mut backoff = self.backoff_for(worker);
        let mut last_err = CommError::Timeout;
        for attempt in 0..self.cfg.rpc_retries.max(1) {
            if attempt > 0 {
                let delay = backoff.next_delay();
                // ordering: Relaxed — statistic.
                self.retrans_bytes
                    .fetch_add(bytes.len() as u64, Ordering::Relaxed);
                self.record_event(NetEvent {
                    worker,
                    kind: NetEventKind::Retry {
                        cause: last_err,
                        bytes: bytes.len() as u64,
                    },
                    delay_us: delay.as_micros() as u64,
                });
                std::thread::sleep(delay);
            }
            if !self.ensure_connected(worker, &mut conn) {
                return Err(CommError::PartitionedLink);
            }
            let Some(stream) = conn.stream.as_mut() else {
                return Err(CommError::PartitionedLink);
            };
            match Self::exchange(stream, &bytes, self.cfg.rpc_timeout) {
                Ok(Ok(frame)) => {
                    if frame.kind == RpcKind::Sync && frame.chunk == STATUS_CORRUPT {
                        last_err = CommError::Corrupt; // server nack: retry
                        continue;
                    }
                    return Ok(frame);
                }
                Ok(Err(err)) => {
                    // Corrupt response: the stream may be mid-frame, so
                    // re-dial before retrying.
                    last_err = err;
                    conn.stream = None;
                }
                Err(io) => {
                    last_err = if io.kind() == std::io::ErrorKind::WouldBlock
                        || io.kind() == std::io::ErrorKind::TimedOut
                    {
                        CommError::Timeout
                    } else {
                        CommError::Disconnected
                    };
                    conn.stream = None;
                }
            }
        }
        Err(last_err)
    }
}

impl Transport for CommSocket {
    fn publish(&self, src: &[f32]) {
        let mut guard = self.state.published.write();
        let n = src.len().min(guard.len());
        guard[..n].copy_from_slice(&src[..n]);
    }

    fn pull(&self, worker: usize, dst: &mut [f32]) {
        let req = Frame::control(RpcKind::Pull, worker as u16, 0, 0);
        if let Ok(reply) = self.rpc(worker, &req) {
            let n = reply.payload.len().min(dst.len());
            dst[..n].copy_from_slice(&reply.payload[..n]);
        }
        // On total failure dst keeps its previous contents; the worker's
        // next push will be stale and the supervisor handles the fallout.
    }

    fn push(&self, worker: usize, src: &[f32]) {
        let seq = {
            let mut conn = self.conns[worker].lock();
            conn.push_seq = conn.push_seq.wrapping_add(1);
            conn.push_seq
        };
        let kind = if self.cfg.delta_push {
            RpcKind::DeltaPush
        } else {
            RpcKind::Push
        };
        let frame = Frame {
            kind,
            precision: self.precision,
            worker: worker as u16,
            epoch: seq,
            chunk: 0,
            payload: src.to_vec(),
        };
        // A push that exhausts its budget is dropped; the server-side
        // collect times out and the supervisor classifies the worker.
        let _ = self.rpc(worker, &frame);
    }

    fn push_duplicate(&self, worker: usize, src: &[f32]) {
        // Re-send under the *current* sequence number — a wire duplicate
        // of the last push. The server's (worker, seq, chunk) dedup must
        // acknowledge it without re-applying.
        let seq = self.conns[worker].lock().push_seq;
        let kind = if self.cfg.delta_push {
            RpcKind::DeltaPush
        } else {
            RpcKind::Push
        };
        let frame = Frame {
            kind,
            precision: self.precision,
            worker: worker as u16,
            epoch: seq,
            chunk: 0,
            payload: src.to_vec(),
        };
        let _ = self.rpc(worker, &frame);
    }

    fn collect(&self, worker: usize, dst: &mut [f32]) {
        let slot = &self.state.slots[worker];
        let mut data = slot.data.lock();
        while !data.ready {
            slot.cv.wait(&mut data);
        }
        data.ready = false;
        let n = data.len.min(data.buf.len()).min(dst.len());
        dst[..n].copy_from_slice(&data.buf[..n]);
    }

    fn collect_timeout(
        &self,
        worker: usize,
        dst: &mut [f32],
        timeout: Duration,
    ) -> Result<(), CommError> {
        let slot = &self.state.slots[worker];
        let deadline = Instant::now() + timeout;
        let mut data = slot.data.lock();
        while !data.ready {
            let now = Instant::now();
            if now >= deadline {
                return Err(CommError::Timeout);
            }
            // Spurious wakeups re-enter the loop with the original deadline.
            slot.cv.wait_for(&mut data, deadline - now);
        }
        data.ready = false;
        let n = data.len.min(data.buf.len()).min(dst.len());
        dst[..n].copy_from_slice(&data.buf[..n]);
        Ok(())
    }

    fn wire_bytes(&self) -> u64 {
        let (pull, push) = self.wire_bytes_by_dir();
        pull + push
    }

    fn wire_bytes_by_dir(&self) -> (u64, u64) {
        // ordering: Relaxed — statistics read for end-of-run reports.
        (
            self.state.pull_bytes.load(Ordering::Relaxed),
            // ordering: Relaxed — statistic (see above).
            self.state.push_bytes.load(Ordering::Relaxed),
        )
    }

    fn workers(&self) -> usize {
        self.conns.len()
    }
}

impl Drop for CommSocket {
    fn drop(&mut self) {
        // ordering: Relaxed — the accept loop polls the flag; visibility
        // within one poll interval is all that is needed.
        self.state.shutdown.store(true, Ordering::Relaxed);
        // Close all client streams so per-connection server threads see
        // EOF and exit.
        for conn in &self.conns {
            conn.lock().stream = None;
        }
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        let handles = std::mem::take(&mut *self.conn_handles.lock());
        for h in handles {
            let _ = h.join();
        }
        if let SockAddr::Unix(path) = &self.addr {
            let _ = std::fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn socket(workers: usize, len: usize) -> CommSocket {
        CommSocket::new(workers, len, len, Precision::Fp32).unwrap()
    }

    #[test]
    fn socket_roundtrip_all_workers() {
        let t = socket(3, 64);
        let data: Vec<f32> = (0..64).map(|j| j as f32 * 0.5).collect();
        t.publish(&data);
        for w in 0..3 {
            let mut pulled = vec![0f32; 64];
            t.pull(w, &mut pulled);
            assert_eq!(pulled, data, "worker {w} pull mismatch");
            let local: Vec<f32> = pulled.iter().map(|v| v + 1.0).collect();
            t.push(w, &local);
            let mut collected = vec![0f32; 64];
            t.collect(w, &mut collected);
            assert_eq!(collected, local, "worker {w} collect mismatch");
        }
        assert_eq!(t.workers(), 3);
    }

    #[test]
    fn socket_fp16_wire_roundtrip() {
        let t = CommSocket::new(1, 32, 32, Precision::Fp16).unwrap();
        let data: Vec<f32> = (0..32).map(|j| 0.01 * j as f32 + 0.1).collect();
        t.publish(&data);
        let mut pulled = vec![0f32; 32];
        t.pull(0, &mut pulled);
        for (a, b) in data.iter().zip(&pulled) {
            assert!((a - b).abs() <= a.abs() / 1024.0 + 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn socket_collect_timeout_without_push() {
        let t = socket(1, 4);
        let mut dst = vec![0f32; 4];
        assert_eq!(
            t.collect_timeout(0, &mut dst, Duration::from_millis(20)),
            Err(CommError::Timeout)
        );
    }

    #[test]
    fn socket_collect_timeout_sees_push() {
        let t = Arc::new(socket(1, 4));
        let t2 = t.clone();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            t2.push(0, &[5.0; 4]);
        });
        let mut dst = vec![0f32; 4];
        t.collect_timeout(0, &mut dst, Duration::from_secs(5))
            .unwrap();
        assert_eq!(dst, vec![5.0; 4]);
        h.join().unwrap();
    }

    #[test]
    fn duplicate_sequence_numbers_apply_once() {
        let t = socket(1, 4);
        // Hand-roll two pushes with the same seq (a retry whose original
        // landed): the second must dedup, not re-apply.
        let frame = Frame {
            kind: RpcKind::Push,
            precision: Precision::Fp32,
            worker: 0,
            epoch: 42,
            chunk: 0,
            payload: vec![1.0, 2.0, 3.0, 4.0],
        };
        assert_eq!(t.rpc(0, &frame).unwrap().chunk, STATUS_OK);
        let mut dst = vec![0f32; 4];
        t.collect_timeout(0, &mut dst, Duration::from_secs(1))
            .unwrap();
        assert_eq!(dst, vec![1.0, 2.0, 3.0, 4.0]);

        // Duplicate: acked but not re-applied, so collect times out.
        assert_eq!(t.rpc(0, &frame).unwrap().chunk, STATUS_OK);
        assert_eq!(t.net_stats().dedup_hits, 1);
        assert_eq!(
            t.collect_timeout(0, &mut dst, Duration::from_millis(30)),
            Err(CommError::Timeout)
        );

        // A fresh sequence number applies again.
        let next = Frame {
            epoch: 43,
            payload: vec![9.0; 4],
            ..frame
        };
        assert_eq!(t.rpc(0, &next).unwrap().chunk, STATUS_OK);
        t.collect_timeout(0, &mut dst, Duration::from_secs(1))
            .unwrap();
        assert_eq!(dst, vec![9.0; 4]);
        assert_eq!(t.net_stats().dedup_hits, 1);
    }

    #[test]
    fn wire_bytes_split_sums_to_total() {
        let t = socket(2, 16);
        t.publish(&[1.0f32; 16]);
        let mut buf = vec![0f32; 16];
        t.pull(0, &mut buf);
        t.push(1, &[2.0f32; 16]);
        t.collect(1, &mut buf);
        let (pull, push) = t.wire_bytes_by_dir();
        assert!(pull > 0 && push > 0);
        assert_eq!(pull + push, t.wire_bytes());
    }

    #[test]
    fn corrupt_frame_on_the_wire_is_nacked_and_retried() {
        let t = socket(1, 4);
        // Send a deliberately CRC-broken push by hand, then a clean RPC
        // through the normal path: the transport's own retry machinery
        // must survive the nack.
        {
            let mut conn = t.conns[0].lock();
            assert!(t.ensure_connected(0, &mut conn));
            let stream = conn.stream.as_mut().unwrap();
            let mut bytes = Frame {
                kind: RpcKind::Push,
                precision: Precision::Fp32,
                worker: 0,
                epoch: 7,
                chunk: 0,
                payload: vec![1.0; 4],
            }
            .encode();
            let mid = HEADER_LEN + 2;
            bytes[mid] ^= 0xFF; // corrupt the payload, CRC now mismatches
            let reply = CommSocket::exchange(stream, &bytes, Duration::from_secs(1))
                .unwrap()
                .unwrap();
            assert_eq!(reply.kind, RpcKind::Sync);
            assert_eq!(reply.chunk, STATUS_CORRUPT);
        }
        // The nacked push was never applied.
        let mut dst = vec![0f32; 4];
        assert_eq!(
            t.collect_timeout(0, &mut dst, Duration::from_millis(20)),
            Err(CommError::Timeout)
        );
        // A clean push still works on the same connection.
        t.push(0, &[3.0; 4]);
        t.collect_timeout(0, &mut dst, Duration::from_secs(1))
            .unwrap();
        assert_eq!(dst, vec![3.0; 4]);
    }

    #[test]
    fn reconnect_after_stream_breakage() {
        let t = socket(1, 4);
        t.publish(&[1.0, 2.0, 3.0, 4.0]);
        let mut dst = vec![0f32; 4];
        t.pull(0, &mut dst);
        assert_eq!(dst, vec![1.0, 2.0, 3.0, 4.0]);
        // Break the stream under the transport's feet.
        t.conns[0].lock().stream = None;
        t.pull(0, &mut dst);
        assert_eq!(dst, vec![1.0, 2.0, 3.0, 4.0], "re-dial served the pull");
    }

    #[test]
    fn partitioned_link_reported_when_server_gone() {
        let cfg = SocketConfig {
            rpc_timeout: Duration::from_millis(30),
            rpc_retries: 2,
            reconnect_attempts: 2,
            backoff_initial: Duration::from_millis(1),
            backoff_max: Duration::from_millis(2),
            ..SocketConfig::default()
        };
        let t = CommSocket::with_config(1, 4, 4, Precision::Fp32, cfg).unwrap();
        // Tear the listener down by stealing its socket file.
        std::fs::remove_file(t.socket_path().unwrap()).unwrap();
        let req = Frame::control(RpcKind::Pull, 0, 0, 0);
        let err = t.rpc(0, &req).unwrap_err();
        assert_eq!(err, CommError::PartitionedLink);
    }

    #[test]
    fn tcp_roundtrip_all_workers() {
        let t = CommSocket::new_tcp(3, 64, 64, Precision::Fp32).unwrap();
        assert!(t.socket_path().is_none());
        let addr = t.tcp_addr().unwrap();
        assert!(addr.ip().is_loopback());
        let data: Vec<f32> = (0..64).map(|j| j as f32 * 0.25).collect();
        t.publish(&data);
        for w in 0..3 {
            let mut pulled = vec![0f32; 64];
            t.pull(w, &mut pulled);
            assert_eq!(pulled, data, "worker {w} pull mismatch over tcp");
            let local: Vec<f32> = pulled.iter().map(|v| v - 1.0).collect();
            t.push(w, &local);
            let mut collected = vec![0f32; 64];
            t.collect(w, &mut collected);
            assert_eq!(collected, local, "worker {w} collect mismatch over tcp");
        }
    }

    #[test]
    fn tcp_reconnect_and_dedup_match_unix_path() {
        let t = CommSocket::new_tcp(1, 4, 4, Precision::Fp32).unwrap();
        t.publish(&[1.0, 2.0, 3.0, 4.0]);
        let mut dst = vec![0f32; 4];
        t.pull(0, &mut dst);
        assert_eq!(dst, vec![1.0, 2.0, 3.0, 4.0]);
        // Break the stream under the transport's feet: the re-dial path
        // must be family-blind.
        t.conns[0].lock().stream = None;
        t.pull(0, &mut dst);
        assert_eq!(dst, vec![1.0, 2.0, 3.0, 4.0], "tcp re-dial served the pull");
        // Same-seq duplicate dedups over TCP exactly as over UDS.
        let frame = Frame {
            kind: RpcKind::Push,
            precision: Precision::Fp32,
            worker: 0,
            epoch: 9,
            chunk: 0,
            payload: vec![7.0; 4],
        };
        assert_eq!(t.rpc(0, &frame).unwrap().chunk, STATUS_OK);
        assert_eq!(t.rpc(0, &frame).unwrap().chunk, STATUS_OK);
        assert_eq!(t.net_stats().dedup_hits, 1);
    }

    #[test]
    fn delta_push_mode_ships_variable_length_payloads() {
        let cfg = SocketConfig {
            delta_push: true,
            ..SocketConfig::default()
        };
        // Slot sized for a worst-case delta over 4 rows of k=2.
        let staging = crate::delta::max_delta_len(4, 2);
        let t = CommSocket::with_config(1, 8, staging, Precision::Fp32, cfg).unwrap();
        let base = vec![0f32; 8];
        let mut cur = base.clone();
        cur[2] = 5.0; // row 1
        cur[7] = -3.0; // row 3
        let delta = crate::delta::encode_delta(&base, &cur, 2);
        t.push(0, &delta);
        // Collect must yield exactly the pushed delta, not a stale tail of
        // the staging-sized slot.
        let mut got = vec![f32::NAN; staging];
        t.collect(0, &mut got);
        assert_eq!(&got[..delta.len()], &delta[..]);
        let mut dst = base.clone();
        assert_eq!(crate::delta::apply_delta(&got, 2, &mut dst), Ok(2));
        assert_eq!(dst, cur);

        // A shorter follow-up delta must not expose the longer one's tail.
        let mut cur2 = cur.clone();
        cur2[0] = 1.0; // row 0 only
        let delta2 = crate::delta::encode_delta(&cur, &cur2, 2);
        assert!(delta2.len() < delta.len());
        t.push(0, &delta2);
        let mut got2 = vec![f32::NAN; staging];
        t.collect(0, &mut got2);
        let mut dst2 = cur.clone();
        assert_eq!(crate::delta::apply_delta(&got2, 2, &mut dst2), Ok(1));
        assert_eq!(dst2, cur2);
    }

    #[test]
    fn net_events_drain_once() {
        let t = socket(1, 4);
        t.record_event(NetEvent {
            worker: 0,
            kind: NetEventKind::Retry {
                cause: CommError::Timeout,
                bytes: 10,
            },
            delay_us: 5,
        });
        assert_eq!(t.drain_net_events().len(), 1);
        assert!(t.drain_net_events().is_empty());
    }

    #[test]
    fn concurrent_workers_roundtrip() {
        let t = Arc::new(socket(4, 16));
        let data: Vec<f32> = (0..16).map(|j| j as f32).collect();
        t.publish(&data);
        std::thread::scope(|scope| {
            for w in 0..4 {
                let t = t.clone();
                let data = data.clone();
                scope.spawn(move || {
                    let mut dst = vec![0f32; 16];
                    t.pull(w, &mut dst);
                    assert_eq!(dst, data);
                    let local: Vec<f32> = dst.iter().map(|v| v * 2.0).collect();
                    t.push(w, &local);
                });
            }
            let t2 = t.clone();
            scope.spawn(move || {
                for w in 0..4 {
                    let mut got = vec![0f32; 16];
                    t2.collect(w, &mut got);
                    assert_eq!(got[3], 6.0);
                }
            });
        });
    }
}
