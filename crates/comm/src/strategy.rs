//! Communication optimization strategies and their volume accounting.
//!
//! The ratio of communication to computation in HCC-MF is governed entirely
//! by how much of the feature data moves per epoch (§3.4). These strategies
//! reduce the per-epoch payload:
//!
//! * `FullPq` — no optimization: both `P` (k·m floats) and `Q` (k·n floats)
//!   are pulled and pushed every epoch.
//! * `QOnly` — with a row grid, each worker owns its `P` rows outright, so
//!   only `Q` needs to travel (except the final epoch, which pushes `P` rows
//!   once). Reduces volume to `n/(m+n)` of the original.
//! * `HalfQ` — `QOnly` plus FP16 compression: half the bytes again.

use serde::{Deserialize, Serialize};

/// Which feature data a worker exchanges with the server each epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransferStrategy {
    /// Transmit both `P` and `Q` in FP32 (the unoptimized baseline).
    FullPq,
    /// Transmit only `Q` in FP32 ("Transmitting Q matrix only").
    QOnly,
    /// Transmit only `Q`, FP16-compressed ("Transmitting FP16 Data").
    HalfQ,
}

impl TransferStrategy {
    /// All strategies, in the order Table 5 reports them.
    pub const ALL: [TransferStrategy; 3] = [
        TransferStrategy::FullPq,
        TransferStrategy::QOnly,
        TransferStrategy::HalfQ,
    ];

    /// Short label as used in the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            TransferStrategy::FullPq => "P&Q",
            TransferStrategy::QOnly => "Q",
            TransferStrategy::HalfQ => "half-Q",
        }
    }

    /// Bytes per element on the wire.
    pub fn bytes_per_element(&self) -> u64 {
        match self {
            TransferStrategy::FullPq | TransferStrategy::QOnly => 4,
            TransferStrategy::HalfQ => 2,
        }
    }

    /// Whether the FP16 codec applies.
    pub fn is_compressed(&self) -> bool {
        matches!(self, TransferStrategy::HalfQ)
    }

    /// Elements pulled by one worker per mid-training epoch. `m`/`n` are the
    /// rating-matrix dimensions, `k` the latent dimension. (Every worker
    /// pulls the full shared matrix; per-worker `P` rows never travel under
    /// `QOnly`/`HalfQ`.)
    pub fn pull_elements(&self, m: u64, n: u64, k: u64) -> u64 {
        match self {
            TransferStrategy::FullPq => k * (m + n),
            TransferStrategy::QOnly | TransferStrategy::HalfQ => k * n,
        }
    }

    /// Elements pushed by one worker per mid-training epoch. Under `FullPq`
    /// a worker pushes only its own `P` rows (`m_assigned`) plus `Q`; under
    /// the optimized strategies just `Q`.
    pub fn push_elements(&self, m_assigned: u64, n: u64, k: u64) -> u64 {
        match self {
            TransferStrategy::FullPq => k * (m_assigned + n),
            TransferStrategy::QOnly | TransferStrategy::HalfQ => k * n,
        }
    }

    /// Bytes pulled per mid-training epoch.
    pub fn pull_bytes(&self, m: u64, n: u64, k: u64) -> u64 {
        self.pull_elements(m, n, k) * self.bytes_per_element()
    }

    /// Bytes pushed per mid-training epoch.
    pub fn push_bytes(&self, m_assigned: u64, n: u64, k: u64) -> u64 {
        self.push_elements(m_assigned, n, k) * self.bytes_per_element()
    }

    /// Extra bytes pushed once at the end of training: the optimized
    /// strategies must finally deliver each worker's `P` rows (in FP32 —
    /// the final model is not compressed).
    pub fn final_push_extra_bytes(&self, m_assigned: u64, k: u64) -> u64 {
        match self {
            TransferStrategy::FullPq => 0,
            TransferStrategy::QOnly | TransferStrategy::HalfQ => 4 * k * m_assigned,
        }
    }

    /// The paper's theoretical communication speedup of `QOnly` over
    /// `FullPq` for a 20-epoch run: `20(m+n) / (m + 20n)` (the one `P` push
    /// still happens).
    pub fn q_only_theoretical_speedup(m: u64, n: u64, epochs: u64) -> f64 {
        (epochs as f64 * (m + n) as f64) / (m as f64 + epochs as f64 * n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(TransferStrategy::FullPq.label(), "P&Q");
        assert_eq!(TransferStrategy::QOnly.label(), "Q");
        assert_eq!(TransferStrategy::HalfQ.label(), "half-Q");
    }

    #[test]
    fn q_only_volume_ratio() {
        // Netflix: m=480190, n=17771 → QOnly transmits n/(m+n) ≈ 3.57% of
        // FullPq — the paper's "~96.4% reduction".
        let (m, n, k) = (480_190u64, 17_771, 128);
        let full = TransferStrategy::FullPq.pull_bytes(m, n, k);
        let qonly = TransferStrategy::QOnly.pull_bytes(m, n, k);
        let ratio = qonly as f64 / full as f64;
        assert!((ratio - n as f64 / (m + n) as f64).abs() < 1e-12);
        assert!(ratio < 0.04, "ratio {ratio}");
    }

    #[test]
    fn half_q_halves_bytes() {
        let (m, n, k) = (1000u64, 500, 32);
        assert_eq!(
            TransferStrategy::HalfQ.pull_bytes(m, n, k) * 2,
            TransferStrategy::QOnly.pull_bytes(m, n, k)
        );
    }

    #[test]
    fn full_pq_pushes_only_assigned_rows() {
        let k = 16u64;
        let push = TransferStrategy::FullPq.push_bytes(100, 500, k);
        assert_eq!(push, 4 * k * 600);
        let push_small = TransferStrategy::FullPq.push_bytes(10, 500, k);
        assert!(push_small < push);
    }

    #[test]
    fn final_push_only_for_optimized() {
        assert_eq!(TransferStrategy::FullPq.final_push_extra_bytes(100, 8), 0);
        assert_eq!(
            TransferStrategy::QOnly.final_push_extra_bytes(100, 8),
            4 * 8 * 100
        );
        assert_eq!(
            TransferStrategy::HalfQ.final_push_extra_bytes(100, 8),
            4 * 8 * 100
        );
    }

    #[test]
    fn theoretical_speedups_match_paper_values() {
        // Paper §4.4 quotes 19.4 / 2.5 / 6.1 for Netflix / R1 / R2 at 20
        // epochs. Its own formula `20(m+n)/(m+20n)` reproduces R1 and R2
        // exactly but yields 11.9 for Netflix — the paper's Netflix figure
        // is internally inconsistent (see EXPERIMENTS.md); we assert the
        // formula.
        let netflix = TransferStrategy::q_only_theoretical_speedup(480_190, 17_771, 20);
        assert!((netflix - 11.9).abs() < 0.1, "netflix {netflix}");
        let r1 = TransferStrategy::q_only_theoretical_speedup(1_948_883, 1_101_750, 20);
        assert!((r1 - 2.5).abs() < 0.1, "r1 {r1}");
        let r2 = TransferStrategy::q_only_theoretical_speedup(1_000_000, 136_736, 20);
        assert!((r2 - 6.1).abs() < 0.1, "r2 {r2}");
    }
}
