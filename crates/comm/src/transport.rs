//! Server↔worker transports.
//!
//! [`CommShared`] is the paper's COMM: a single shared *pull region* the
//! server publishes the global feature matrix into (every worker reads it
//! directly — one copy per direction), and one *push buffer* per worker the
//! server collects from. [`CommP`] is the comparison implementation the
//! paper builds on ps-lite ("COMM-P"): every message is serialized into a
//! fresh byte buffer, crosses a channel, and is deserialized through a
//! staging copy on the far side — the extra copies and temporary allocations
//! are exactly what Table 5 blames for its ~6–7× slower transfers.
//!
//! Both transports speak f32 payloads at the API and optionally compress to
//! FP16 on the wire ([`Precision::Fp16`]), so the Table 5 grid
//! {P&Q, Q, half-Q} × {COMM, COMM-P} is expressible.

use crate::buffer::SharedBuffer;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use hcc_sgd::fp16;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Transport-level failures surfaced to the supervisor instead of blocking
/// forever or panicking. `Timeout` and `Corrupt` are retryable (the peer
/// may be a straggler, the frame may arrive clean next time);
/// `Disconnected` and `PartitionedLink` are fatal for that peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommError {
    /// No push arrived within the deadline.
    Timeout,
    /// The peer's channel endpoint is gone (worker thread exited).
    Disconnected,
    /// A frame arrived but failed integrity checks (CRC mismatch, bad
    /// header). The supervisor treats this exactly like a dropped push:
    /// retry, then classify the worker as a straggler/dead.
    Corrupt,
    /// The link to this peer is partitioned: reconnect attempts exhausted
    /// their backoff budget. Unlike `Timeout` there is no point retrying
    /// within the epoch.
    PartitionedLink,
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Timeout => write!(f, "transport wait timed out"),
            CommError::Disconnected => write!(f, "transport peer disconnected"),
            CommError::Corrupt => write!(f, "transport frame failed integrity check"),
            CommError::PartitionedLink => write!(f, "transport link partitioned"),
        }
    }
}

impl std::error::Error for CommError {}

/// Wire precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// 4 bytes per element on the wire.
    Fp32,
    /// 2 bytes per element on the wire (IEEE binary16).
    Fp16,
}

impl Precision {
    /// Bytes per element on the wire.
    pub fn bytes_per_element(&self) -> u64 {
        match self {
            Precision::Fp32 => 4,
            Precision::Fp16 => 2,
        }
    }
}

/// An owned f32 payload (convenience for tests and the pipeline stage API).
pub type Payload = Vec<f32>;

/// A bidirectional server↔worker transport.
pub trait Transport: Send + Sync {
    /// Server side: publish the shared feature data for workers to pull.
    fn publish(&self, src: &[f32]);
    /// Worker side: read the published data into `dst`.
    fn pull(&self, worker: usize, dst: &mut [f32]);
    /// Worker side: submit this worker's updated data.
    fn push(&self, worker: usize, src: &[f32]);
    /// Worker side: deliver a *wire-level duplicate* of this worker's most
    /// recent push (what a retransmitting network does when the original
    /// also arrived). Framed transports resend under the same sequence
    /// number so the server's idempotency dedup is exercised; for
    /// shared-memory transports a duplicate of an in-place buffer write is
    /// indistinguishable from the original, so the default is a no-op.
    fn push_duplicate(&self, worker: usize, src: &[f32]) {
        let _ = (worker, src);
    }
    /// Server side: obtain worker `worker`'s most recent push into `dst`.
    /// Blocks until a push is available.
    fn collect(&self, worker: usize, dst: &mut [f32]);
    /// Like [`collect`](Transport::collect) but gives up after `timeout`,
    /// letting a supervisor distinguish a dead worker from a slow one.
    fn collect_timeout(
        &self,
        worker: usize,
        dst: &mut [f32],
        timeout: Duration,
    ) -> Result<(), CommError>;
    /// Total bytes that crossed the wire so far.
    fn wire_bytes(&self) -> u64;
    /// Wire bytes split by direction as `(pull, push)`: publish/pull
    /// traffic (server → workers) vs push/collect traffic (workers →
    /// server). Sums to [`wire_bytes`](Transport::wire_bytes); telemetry
    /// records the two directions separately because the communication
    /// strategies (Q-only, half-Q, FP16) trade them off asymmetrically.
    fn wire_bytes_by_dir(&self) -> (u64, u64);
    /// Number of workers this transport serves.
    fn workers(&self) -> usize;
}

// ---------------------------------------------------------------------------
// COMM: shared-memory transport
// ---------------------------------------------------------------------------

/// Wire storage at a given precision with byte accounting.
#[derive(Debug)]
enum WireStore {
    F32(SharedBuffer),
    F16(RwLock<Vec<u16>>),
}

#[derive(Debug)]
struct WireBuffer {
    store: WireStore,
    bytes: AtomicU64,
}

impl WireBuffer {
    fn new(len: usize, precision: Precision) -> WireBuffer {
        let store = match precision {
            Precision::Fp32 => WireStore::F32(SharedBuffer::new(len)),
            Precision::Fp16 => WireStore::F16(RwLock::new(vec![0u16; len])),
        };
        WireBuffer {
            store,
            bytes: AtomicU64::new(0),
        }
    }

    fn write_f32(&self, src: &[f32]) {
        self.write_f32_at(0, src);
    }

    fn read_f32(&self, dst: &mut [f32]) {
        self.read_f32_at(0, dst);
    }

    fn write_f32_at(&self, offset: usize, src: &[f32]) {
        match &self.store {
            WireStore::F32(buf) => buf.write(offset, src),
            WireStore::F16(cells) => {
                // Large payloads use the rayon codec — the paper's
                // multi-threaded AVX conversion analog.
                let mut guard = cells.write();
                let dst = &mut guard[offset..offset + src.len()];
                if src.len() >= 1 << 16 {
                    fp16::encode_parallel(src, dst);
                } else {
                    fp16::encode_slice(src, dst);
                }
            }
        }
        self.bytes.fetch_add(
            src.len() as u64 * self.precision().bytes_per_element(),
            Ordering::Relaxed,
        );
    }

    fn read_f32_at(&self, offset: usize, dst: &mut [f32]) {
        match &self.store {
            WireStore::F32(buf) => buf.read(offset, dst),
            WireStore::F16(cells) => {
                let guard = cells.read();
                let src = &guard[offset..offset + dst.len()];
                if dst.len() >= 1 << 16 {
                    fp16::decode_parallel(src, dst);
                } else {
                    fp16::decode_slice(src, dst);
                }
            }
        }
        self.bytes.fetch_add(
            dst.len() as u64 * self.precision().bytes_per_element(),
            Ordering::Relaxed,
        );
    }

    fn precision(&self) -> Precision {
        match &self.store {
            WireStore::F32(_) => Precision::Fp32,
            WireStore::F16(_) => Precision::Fp16,
        }
    }

    fn bytes(&self) -> u64 {
        // ordering: Relaxed — wire-byte statistic, reported after joins.
        self.bytes.load(Ordering::Relaxed)
    }
}

/// Identifies a chunk pushed through the asynchronous pipeline: which
/// worker, at which float offset in its push buffer, how many floats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkTag {
    /// Pushing worker.
    pub worker: usize,
    /// Float offset within the push buffer.
    pub offset: usize,
    /// Chunk length in floats.
    pub len: usize,
}

/// The paper's COMM: one shared pull region + one push buffer per worker.
/// Every transfer is a single copy into/out of shared storage.
pub struct CommShared {
    pull_region: WireBuffer,
    push_buffers: Vec<WireBuffer>,
    /// One-shot signals that a worker's push landed (server may collect).
    push_ready: Vec<(Mutex<bool>, parking_lot::Condvar)>,
    /// Chunk arrival queue for the asynchronous (Strategy 3) path.
    chunk_tx: Sender<ChunkTag>,
    chunk_rx: Receiver<ChunkTag>,
}

impl CommShared {
    /// Creates a transport for `workers` workers exchanging payloads of
    /// `pull_len` / `push_len` floats at the given wire precision.
    pub fn new(workers: usize, pull_len: usize, push_len: usize, precision: Precision) -> Self {
        let (chunk_tx, chunk_rx) = unbounded();
        CommShared {
            pull_region: WireBuffer::new(pull_len, precision),
            push_buffers: (0..workers)
                .map(|_| WireBuffer::new(push_len, precision))
                .collect(),
            push_ready: (0..workers)
                .map(|_| (Mutex::new(false), parking_lot::Condvar::new()))
                .collect(),
            chunk_tx,
            chunk_rx,
        }
    }

    /// Writes a region of the pull area (server side, Strategy 3: publish a
    /// column chunk of `Q`).
    pub fn publish_at(&self, offset: usize, src: &[f32]) {
        self.pull_region.write_f32_at(offset, src);
    }

    /// Reads a region of the pull area (worker side).
    pub fn pull_at(&self, offset: usize, dst: &mut [f32]) {
        self.pull_region.read_f32_at(offset, dst);
    }

    /// Worker side: writes a chunk into its push buffer and signals the
    /// server's chunk queue.
    pub fn push_chunk(&self, worker: usize, offset: usize, src: &[f32]) {
        self.push_buffers[worker].write_f32_at(offset, src);
        self.chunk_tx
            .send(ChunkTag {
                worker,
                offset,
                len: src.len(),
            })
            .expect("chunk receiver dropped");
    }

    /// Server side: blocks for the next pushed chunk and copies it into
    /// `dst` (which must be at least `tag.len` floats).
    pub fn collect_chunk(&self, dst: &mut [f32]) -> ChunkTag {
        let tag = self.chunk_rx.recv().expect("chunk sender dropped");
        self.push_buffers[tag.worker].read_f32_at(tag.offset, &mut dst[..tag.len]);
        tag
    }

    /// Number of chunks currently queued (for draining checks).
    pub fn pending_chunks(&self) -> usize {
        self.chunk_rx.len()
    }
}

impl Transport for CommShared {
    fn publish(&self, src: &[f32]) {
        self.pull_region.write_f32(src);
    }

    fn pull(&self, _worker: usize, dst: &mut [f32]) {
        self.pull_region.read_f32(dst);
    }

    fn push(&self, worker: usize, src: &[f32]) {
        self.push_buffers[worker].write_f32(src);
        let (lock, cv) = &self.push_ready[worker];
        *lock.lock() = true;
        cv.notify_all();
    }

    fn collect(&self, worker: usize, dst: &mut [f32]) {
        let (lock, cv) = &self.push_ready[worker];
        let mut ready = lock.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        *ready = false;
        drop(ready);
        self.push_buffers[worker].read_f32(dst);
    }

    fn collect_timeout(
        &self,
        worker: usize,
        dst: &mut [f32],
        timeout: Duration,
    ) -> Result<(), CommError> {
        let (lock, cv) = &self.push_ready[worker];
        let deadline = Instant::now() + timeout;
        let mut ready = lock.lock();
        while !*ready {
            let now = Instant::now();
            if now >= deadline {
                return Err(CommError::Timeout);
            }
            // Spurious wakeups re-enter the loop with the original deadline.
            cv.wait_for(&mut ready, deadline - now);
        }
        *ready = false;
        drop(ready);
        self.push_buffers[worker].read_f32(dst);
        Ok(())
    }

    fn wire_bytes(&self) -> u64 {
        self.pull_region.bytes() + self.push_buffers.iter().map(WireBuffer::bytes).sum::<u64>()
    }

    fn wire_bytes_by_dir(&self) -> (u64, u64) {
        (
            self.pull_region.bytes(),
            self.push_buffers.iter().map(WireBuffer::bytes).sum(),
        )
    }

    fn workers(&self) -> usize {
        self.push_buffers.len()
    }
}

// ---------------------------------------------------------------------------
// COMM-P: message-passing transport (the ps-lite model)
// ---------------------------------------------------------------------------

/// The ps-lite-style baseline: serialize → channel → staging → destination.
pub struct CommP {
    precision: Precision,
    /// Latest published message, shared by all workers.
    published: RwLock<Arc<Vec<u8>>>,
    /// Per-worker push channels.
    senders: Vec<Sender<Vec<u8>>>,
    receivers: Vec<Mutex<Receiver<Vec<u8>>>>,
    /// Publish/pull traffic (server → workers).
    pull_bytes: AtomicU64,
    /// Push/collect traffic (workers → server).
    push_bytes: AtomicU64,
}

impl CommP {
    /// Creates a message-passing transport for `workers` workers.
    pub fn new(workers: usize, precision: Precision) -> Self {
        let mut senders = Vec::with_capacity(workers);
        let mut receivers = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(Mutex::new(rx));
        }
        CommP {
            precision,
            published: RwLock::new(Arc::new(Vec::new())),
            senders,
            receivers,
            pull_bytes: AtomicU64::new(0),
            push_bytes: AtomicU64::new(0),
        }
    }

    /// Element-wise serialization into a *fresh* byte vector — deliberately
    /// not a memcpy: ps-lite walks the data building protobuf-framed
    /// messages, and the per-element work plus the allocation is the
    /// overhead COMM avoids.
    fn serialize(&self, src: &[f32]) -> Vec<u8> {
        match self.precision {
            Precision::Fp32 => {
                let mut out = Vec::with_capacity(src.len() * 4);
                for &v in src {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                out
            }
            Precision::Fp16 => {
                let mut out = Vec::with_capacity(src.len() * 2);
                for &v in src {
                    out.extend_from_slice(&fp16::f32_to_f16(v).to_le_bytes());
                }
                out
            }
        }
    }

    fn deserialize(&self, msg: &[u8], dst: &mut [f32]) {
        match self.precision {
            Precision::Fp32 => {
                // Staging copy first (the KV-store's receive buffer), then
                // element-wise decode into the destination.
                let staging: Vec<u8> = msg.to_vec();
                for (j, chunk) in staging.chunks_exact(4).enumerate() {
                    dst[j] = f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
                }
            }
            Precision::Fp16 => {
                let staging: Vec<u8> = msg.to_vec();
                for (j, chunk) in staging.chunks_exact(2).enumerate() {
                    dst[j] = fp16::f16_to_f32(u16::from_le_bytes([chunk[0], chunk[1]]));
                }
            }
        }
    }
}

impl Transport for CommP {
    fn publish(&self, src: &[f32]) {
        let msg = self.serialize(src);
        // ordering: Relaxed — wire-byte statistics on every path below;
        // the channels/RwLock carry the actual data synchronization.
        self.pull_bytes
            .fetch_add(msg.len() as u64, Ordering::Relaxed);
        *self.published.write() = Arc::new(msg);
    }

    fn pull(&self, _worker: usize, dst: &mut [f32]) {
        let msg = self.published.read().clone();
        // ordering: Relaxed — statistic (see `publish`).
        self.pull_bytes
            .fetch_add(msg.len() as u64, Ordering::Relaxed);
        self.deserialize(&msg, dst);
    }

    fn push(&self, worker: usize, src: &[f32]) {
        let msg = self.serialize(src);
        // ordering: Relaxed — statistic (see `publish`).
        self.push_bytes
            .fetch_add(msg.len() as u64, Ordering::Relaxed);
        self.senders[worker]
            .send(msg)
            .expect("server receiver dropped");
    }

    fn collect(&self, worker: usize, dst: &mut [f32]) {
        let msg = self.receivers[worker]
            .lock()
            .recv()
            .expect("worker sender dropped");
        // ordering: Relaxed — statistic (see `publish`).
        self.push_bytes
            .fetch_add(msg.len() as u64, Ordering::Relaxed);
        self.deserialize(&msg, dst);
    }

    fn collect_timeout(
        &self,
        worker: usize,
        dst: &mut [f32],
        timeout: Duration,
    ) -> Result<(), CommError> {
        let msg = match self.receivers[worker].lock().recv_timeout(timeout) {
            Ok(msg) => msg,
            Err(RecvTimeoutError::Timeout) => return Err(CommError::Timeout),
            Err(RecvTimeoutError::Disconnected) => return Err(CommError::Disconnected),
        };
        // ordering: Relaxed — statistic (see `publish`).
        self.push_bytes
            .fetch_add(msg.len() as u64, Ordering::Relaxed);
        self.deserialize(&msg, dst);
        Ok(())
    }

    fn wire_bytes(&self) -> u64 {
        let (pull, push) = self.wire_bytes_by_dir();
        pull + push
    }

    fn wire_bytes_by_dir(&self) -> (u64, u64) {
        // ordering: Relaxed — statistics read for end-of-run reports.
        (
            self.pull_bytes.load(Ordering::Relaxed),
            self.push_bytes.load(Ordering::Relaxed),
        )
    }

    fn workers(&self) -> usize {
        self.senders.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(transport: &dyn Transport, workers: usize) {
        let data: Vec<f32> = (0..64).map(|j| j as f32 * 0.5).collect();
        transport.publish(&data);
        for w in 0..workers {
            let mut pulled = vec![0f32; 64];
            transport.pull(w, &mut pulled);
            assert_eq!(pulled, data, "worker {w} pull mismatch");
            let local: Vec<f32> = pulled.iter().map(|v| v + 1.0).collect();
            transport.push(w, &local);
            let mut collected = vec![0f32; 64];
            transport.collect(w, &mut collected);
            assert_eq!(collected, local, "worker {w} collect mismatch");
        }
    }

    #[test]
    fn comm_shared_fp32_roundtrip() {
        let t = CommShared::new(3, 64, 64, Precision::Fp32);
        roundtrip(&t, 3);
        assert_eq!(t.workers(), 3);
    }

    #[test]
    fn comm_p_fp32_roundtrip() {
        let t = CommP::new(3, Precision::Fp32);
        roundtrip(&t, 3);
    }

    #[test]
    fn fp16_roundtrip_within_tolerance() {
        for transport in [
            Box::new(CommShared::new(1, 32, 32, Precision::Fp16)) as Box<dyn Transport>,
            Box::new(CommP::new(1, Precision::Fp16)),
        ] {
            let data: Vec<f32> = (0..32).map(|j| 0.01 * j as f32 + 0.1).collect();
            transport.publish(&data);
            let mut pulled = vec![0f32; 32];
            transport.pull(0, &mut pulled);
            for (a, b) in data.iter().zip(&pulled) {
                assert!((a - b).abs() <= a.abs() / 1024.0 + 1e-6, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn fp16_wire_uses_half_the_bytes() {
        let t32 = CommShared::new(1, 100, 100, Precision::Fp32);
        let t16 = CommShared::new(1, 100, 100, Precision::Fp16);
        let data = vec![1.0f32; 100];
        t32.publish(&data);
        t16.publish(&data);
        assert_eq!(t32.wire_bytes(), 400);
        assert_eq!(t16.wire_bytes(), 200);
    }

    #[test]
    fn wire_bytes_split_by_direction_sums_to_total() {
        for t in [
            Box::new(CommShared::new(2, 100, 50, Precision::Fp32)) as Box<dyn Transport>,
            Box::new(CommP::new(2, Precision::Fp32)),
        ] {
            let pub_data = vec![1.0f32; 100];
            t.publish(&pub_data);
            let mut pulled = vec![0f32; 100];
            t.pull(0, &mut pulled);
            t.push(1, &[2.0f32; 50]);
            let mut collected = vec![0f32; 50];
            t.collect(1, &mut collected);
            let (pull, push) = t.wire_bytes_by_dir();
            assert_eq!(pull + push, t.wire_bytes());
            assert_eq!(pull, 800, "publish + one pull, 4 bytes/elem");
            assert_eq!(push, 400, "push + collect, 4 bytes/elem");
        }
    }

    #[test]
    fn collect_blocks_until_push() {
        let t = Arc::new(CommShared::new(1, 4, 4, Precision::Fp32));
        let t2 = t.clone();
        let handle = std::thread::spawn(move || {
            let mut dst = vec![0f32; 4];
            t2.collect(0, &mut dst);
            dst
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        t.push(0, &[7.0, 8.0, 9.0, 10.0]);
        let got = handle.join().unwrap();
        assert_eq!(got, vec![7.0, 8.0, 9.0, 10.0]);
    }

    #[test]
    fn collect_timeout_times_out_without_push() {
        let shared = CommShared::new(1, 4, 4, Precision::Fp32);
        let mut dst = vec![0f32; 4];
        assert_eq!(
            shared.collect_timeout(0, &mut dst, Duration::from_millis(20)),
            Err(CommError::Timeout)
        );
        let p = CommP::new(1, Precision::Fp32);
        assert_eq!(
            p.collect_timeout(0, &mut dst, Duration::from_millis(20)),
            Err(CommError::Timeout)
        );
    }

    #[test]
    fn collect_timeout_returns_pushed_data() {
        for t in [
            Box::new(CommShared::new(1, 4, 4, Precision::Fp32)) as Box<dyn Transport>,
            Box::new(CommP::new(1, Precision::Fp32)),
        ] {
            t.push(0, &[1.0, 2.0, 3.0, 4.0]);
            let mut dst = vec![0f32; 4];
            t.collect_timeout(0, &mut dst, Duration::from_millis(100))
                .unwrap();
            assert_eq!(dst, vec![1.0, 2.0, 3.0, 4.0]);
        }
    }

    #[test]
    fn collect_timeout_sees_late_push() {
        let t = Arc::new(CommShared::new(1, 4, 4, Precision::Fp32));
        let t2 = t.clone();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            t2.push(0, &[5.0; 4]);
        });
        let mut dst = vec![0f32; 4];
        t.collect_timeout(0, &mut dst, Duration::from_secs(5))
            .unwrap();
        assert_eq!(dst, vec![5.0; 4]);
        handle.join().unwrap();
    }

    #[test]
    fn comm_p_queues_multiple_pushes() {
        let t = CommP::new(1, Precision::Fp32);
        t.push(0, &[1.0]);
        t.push(0, &[2.0]);
        let mut dst = vec![0f32; 1];
        t.collect(0, &mut dst);
        assert_eq!(dst, vec![1.0]);
        t.collect(0, &mut dst);
        assert_eq!(dst, vec![2.0]);
    }

    #[test]
    fn concurrent_pulls_see_published_data() {
        let t = Arc::new(CommShared::new(4, 16, 16, Precision::Fp32));
        let data: Vec<f32> = (0..16).map(|j| j as f32).collect();
        t.publish(&data);
        std::thread::scope(|scope| {
            for w in 0..4 {
                let t = t.clone();
                let data = data.clone();
                scope.spawn(move || {
                    let mut dst = vec![0f32; 16];
                    t.pull(w, &mut dst);
                    assert_eq!(dst, data);
                });
            }
        });
    }
}

#[cfg(test)]
mod chunk_tests {
    use super::*;

    #[test]
    fn chunked_push_collect_roundtrip() {
        let t = CommShared::new(2, 8, 8, Precision::Fp32);
        t.push_chunk(1, 4, &[1.0, 2.0]);
        t.push_chunk(0, 0, &[3.0]);
        let mut buf = vec![0f32; 8];
        let tag = t.collect_chunk(&mut buf);
        assert_eq!(
            tag,
            ChunkTag {
                worker: 1,
                offset: 4,
                len: 2
            }
        );
        assert_eq!(&buf[..2], &[1.0, 2.0]);
        let tag = t.collect_chunk(&mut buf);
        assert_eq!(
            tag,
            ChunkTag {
                worker: 0,
                offset: 0,
                len: 1
            }
        );
        assert_eq!(buf[0], 3.0);
        assert_eq!(t.pending_chunks(), 0);
    }

    #[test]
    fn publish_at_and_pull_at_are_ranged() {
        let t = CommShared::new(1, 10, 10, Precision::Fp32);
        t.publish_at(3, &[7.0, 8.0]);
        let mut out = vec![0f32; 2];
        t.pull_at(3, &mut out);
        assert_eq!(out, vec![7.0, 8.0]);
        t.pull_at(0, &mut out);
        assert_eq!(out, vec![0.0, 0.0]);
    }

    #[test]
    fn ranged_fp16_roundtrip() {
        let t = CommShared::new(1, 6, 6, Precision::Fp16);
        t.publish_at(2, &[0.5, 0.25, 1.5]);
        let mut out = vec![0f32; 3];
        t.pull_at(2, &mut out);
        assert_eq!(out, vec![0.5, 0.25, 1.5]); // exactly representable
    }
}
