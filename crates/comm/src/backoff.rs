//! Jittered exponential backoff, shared by every retry loop in the
//! workspace.
//!
//! The supervisor's `collect_timeout` loop, the socket transport's
//! reconnect path, and the serving hot-reload retry all follow the same
//! shape: start at some delay, multiply by a factor after each failure,
//! optionally cap, optionally jitter. This type centralizes the math so
//! the sequences stay identical where they must (the supervisor's retry
//! ladder is part of the observable training behaviour) and deterministic
//! where randomness is wanted (jitter comes from a seeded splitmix64, not
//! a global RNG).

use std::time::Duration;

/// Deterministic jittered exponential backoff.
///
/// [`next_delay`](Backoff::next_delay) returns the *current* delay and
/// then advances it, so the first call yields the initial delay exactly —
/// matching the supervisor's historical `timeout → timeout · factor`
/// ladder bit-for-bit when jitter is off.
#[derive(Debug, Clone)]
pub struct Backoff {
    cur: Duration,
    factor: f64,
    max: Duration,
    /// Jitter fraction in `[0, 1)`: each delay is scaled by a
    /// deterministic factor in `[1 − jitter, 1 + jitter]`.
    jitter: f64,
    rng: u64,
}

impl Backoff {
    /// A plain exponential ladder: `initial`, `initial·factor`,
    /// `initial·factor²`, … with no cap and no jitter. `factor` is clamped
    /// to at least 1.0 so the ladder never shrinks.
    pub fn new(initial: Duration, factor: f64) -> Backoff {
        Backoff {
            cur: initial,
            factor: factor.max(1.0),
            max: Duration::MAX,
            jitter: 0.0,
            rng: 0,
        }
    }

    /// Caps every returned delay (and the internal ladder) at `max`.
    pub fn with_max(mut self, max: Duration) -> Backoff {
        self.max = max;
        self.cur = self.cur.min(max);
        self
    }

    /// Adds deterministic jitter: each delay is scaled by a factor drawn
    /// from `[1 − frac, 1 + frac]` using a splitmix64 stream seeded with
    /// `seed`. Two `Backoff`s with the same seed produce identical
    /// sequences. `frac` is clamped to `[0, 0.99]`.
    pub fn with_jitter(mut self, seed: u64, frac: f64) -> Backoff {
        self.jitter = frac.clamp(0.0, 0.99);
        // Avoid the all-zero splitmix64 fixed point for seed 0.
        self.rng = seed ^ 0x9E37_79B9_7F4A_7C15;
        self
    }

    /// Returns the delay to use for the next attempt and advances the
    /// ladder.
    pub fn next_delay(&mut self) -> Duration {
        let base = self.cur;
        // Advance: cur ← min(cur · factor, max). Computed in f64 seconds
        // with clamping so the multiply can never overflow Duration.
        let advanced = self.cur.as_secs_f64() * self.factor;
        let cap = self.max.as_secs_f64();
        self.cur = Duration::from_secs_f64(if advanced.is_finite() {
            advanced.min(cap)
        } else {
            cap
        });
        if self.jitter == 0.0 {
            return base;
        }
        // splitmix64 step → uniform in [0, 1) → scale in [1−j, 1+j].
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
        let scale = 1.0 - self.jitter + 2.0 * self.jitter * unit;
        Duration::from_secs_f64((base.as_secs_f64() * scale).min(self.max.as_secs_f64()))
    }

    /// Peeks at the delay the next [`next_delay`](Backoff::next_delay)
    /// call will base itself on (pre-jitter).
    pub fn current(&self) -> Duration {
        self.cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_ladder_matches_the_supervisor_sequence() {
        // The historical supervisor loop: timeout, then timeout·1.5, …
        let mut bo = Backoff::new(Duration::from_millis(200), 1.5);
        let mut manual = Duration::from_millis(200);
        for _ in 0..5 {
            assert_eq!(bo.next_delay(), manual);
            manual = manual.mul_f64(1.5);
        }
    }

    #[test]
    fn factor_below_one_is_clamped() {
        let mut bo = Backoff::new(Duration::from_millis(10), 0.5);
        let a = bo.next_delay();
        let b = bo.next_delay();
        assert!(b >= a);
    }

    #[test]
    fn max_caps_the_ladder() {
        let mut bo =
            Backoff::new(Duration::from_millis(100), 10.0).with_max(Duration::from_millis(250));
        assert_eq!(bo.next_delay(), Duration::from_millis(100));
        assert_eq!(bo.next_delay(), Duration::from_millis(250));
        assert_eq!(bo.next_delay(), Duration::from_millis(250));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let seq = |seed| {
            let mut bo = Backoff::new(Duration::from_millis(100), 2.0)
                .with_jitter(seed, 0.2)
                .with_max(Duration::from_secs(1));
            (0..6).map(|_| bo.next_delay()).collect::<Vec<_>>()
        };
        assert_eq!(seq(7), seq(7), "same seed, same sequence");
        assert_ne!(seq(7), seq(8), "different seed, different jitter");
        let mut bo = Backoff::new(Duration::from_millis(100), 2.0).with_jitter(3, 0.25);
        let base = [100.0, 200.0, 400.0];
        for expect in base {
            let got = bo.next_delay().as_secs_f64() * 1000.0;
            assert!(
                got >= expect * 0.75 - 1e-6 && got <= expect * 1.25 + 1e-6,
                "delay {got}ms outside ±25% of {expect}ms"
            );
        }
    }

    #[test]
    fn huge_factors_never_overflow() {
        let mut bo = Backoff::new(Duration::from_secs(1), 1e18).with_max(Duration::from_secs(60));
        for _ in 0..10 {
            assert!(bo.next_delay() <= Duration::from_secs(60));
        }
        assert_eq!(bo.current(), Duration::from_secs(60));
    }
}
