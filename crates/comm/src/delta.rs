//! Row-delta payload codec for sharded parameter pushes.
//!
//! The paper's "Transmit Q only" insight cuts the *columns* shipped per
//! sync; a sharded parameter server generalizes it along the other axis:
//! a worker only touches the parameter rows its ratings reference, so a
//! push to a shard need only carry the rows that changed since the shard
//! last published. The codec here packs such a delta into a flat f32
//! payload that rides inside an ordinary [`crate::Frame`]
//! ([`crate::RpcKind::DeltaPush`]):
//!
//! ```text
//! ┌───────┬───────────────────┬─────────────────────────┐
//! │ count │ row indices       │ row data                │
//! │ 1 f32 │ count f32 (exact) │ count × k f32           │
//! └───────┴───────────────────┴─────────────────────────┘
//! ```
//!
//! Indices are stored as f32, which is exact for rows below 2^24 — far
//! above any shard's row range (shards split an n ≤ tens-of-millions row
//! space N ways). "Changed" is a *bitwise* row comparison, so applying a
//! delta on top of the published base reconstructs the worker's full
//! buffer bit-for-bit: unshipped rows are, by construction, bit-equal to
//! what the server already published.

/// Rows per delta are capped at 2^24 so an f32 index is always exact.
pub const MAX_DELTA_ROWS: usize = 1 << 24;

/// A malformed delta payload (truncated, or a row index outside the
/// destination). Surfaced instead of panicking so a corrupt frame that
/// sneaks past the CRC cannot take the server down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaError;

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed delta payload")
    }
}

impl std::error::Error for DeltaError {}

/// Worst-case encoded length in f32 elements for a buffer of `rows` rows:
/// every row touched.
pub fn max_delta_len(rows: usize, k: usize) -> usize {
    1 + rows + rows * k
}

/// Encoded length in f32 elements for a delta carrying `touched` rows.
pub fn delta_len(touched: usize, k: usize) -> usize {
    1 + touched + touched * k
}

/// Encodes the rows of `cur` that differ bitwise from `base`. Both slices
/// must hold the same whole number of `k`-element rows; extra trailing
/// elements (a non-row-aligned tail) are never shipped.
pub fn encode_delta(base: &[f32], cur: &[f32], k: usize) -> Vec<f32> {
    let rows = cur.len().min(base.len()).checked_div(k).unwrap_or(0);
    let mut touched: Vec<usize> = Vec::new();
    for r in 0..rows.min(MAX_DELTA_ROWS) {
        let at = r * k;
        let changed = cur[at..at + k]
            .iter()
            .zip(&base[at..at + k])
            .any(|(a, b)| a.to_bits() != b.to_bits());
        if changed {
            touched.push(r);
        }
    }
    let mut out = Vec::with_capacity(delta_len(touched.len(), k));
    out.push(touched.len() as f32);
    for &r in &touched {
        out.push(r as f32);
    }
    for &r in &touched {
        out.extend_from_slice(&cur[r * k..r * k + k]);
    }
    out
}

/// Applies a delta on top of `dst` (which must already hold the published
/// base rows) and returns the number of rows applied. Trailing elements
/// beyond the encoded length are ignored, so `delta` may be a prefix of a
/// larger staging buffer.
///
/// All-or-nothing: every index is validated before the first row is
/// written, so on `Err` the destination is bitwise untouched — a corrupt
/// frame that slips past the CRC can never leave a shard half-applied.
pub fn apply_delta(delta: &[f32], k: usize, dst: &mut [f32]) -> Result<usize, DeltaError> {
    let &count = delta.first().ok_or(DeltaError)?;
    if !(0.0..=MAX_DELTA_ROWS as f32).contains(&count) || count.fract() != 0.0 {
        return Err(DeltaError);
    }
    let count = count as usize;
    if delta.len() < delta_len(count, k) {
        return Err(DeltaError);
    }
    let rows = dst.len().checked_div(k).unwrap_or(0);
    let (indices, data) = delta[1..].split_at(count);
    for &idx in indices {
        if !(0.0..rows as f32).contains(&idx) || idx.fract() != 0.0 {
            return Err(DeltaError);
        }
    }
    for (i, &idx) in indices.iter().enumerate() {
        let r = idx as usize;
        dst[r * k..r * k + k].copy_from_slice(&data[i * k..i * k + k]);
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_delta_when_nothing_changed() {
        let base = vec![1.0f32; 12];
        let delta = encode_delta(&base, &base, 4);
        assert_eq!(delta, vec![0.0]);
        let mut dst = base.clone();
        assert_eq!(apply_delta(&delta, 4, &mut dst), Ok(0));
        assert_eq!(dst, base);
    }

    #[test]
    fn roundtrip_reconstructs_bit_for_bit() {
        let k = 3;
        let base: Vec<f32> = (0..15).map(|i| i as f32 * 0.5).collect();
        let mut cur = base.clone();
        cur[0] = -7.5; // row 0
        cur[9] = 100.0; // row 3
        let delta = encode_delta(&base, &cur, k);
        assert_eq!(delta[0], 2.0);
        assert_eq!(&delta[1..3], &[0.0, 3.0]);
        assert_eq!(delta.len(), delta_len(2, k));
        let mut dst = base.clone();
        assert_eq!(apply_delta(&delta, k, &mut dst), Ok(2));
        assert_eq!(dst, cur);
    }

    #[test]
    fn bitwise_diff_catches_negative_zero_and_nan() {
        let base = vec![0.0f32, f32::NAN];
        // -0.0 == 0.0 numerically but differs bitwise: must ship.
        let cur = vec![-0.0f32, f32::NAN];
        let delta = encode_delta(&base, &cur, 2);
        assert_eq!(delta[0], 1.0, "-0.0 row must be shipped");
        // An identical NaN row is bit-equal: nothing to ship.
        let delta = encode_delta(&base, &base, 2);
        assert_eq!(delta[0], 0.0);
    }

    #[test]
    fn trailing_staging_garbage_is_ignored() {
        let base = vec![1.0f32; 4];
        let cur = vec![2.0f32; 4];
        let mut staged = encode_delta(&base, &cur, 2);
        staged.extend_from_slice(&[9.9; 7]); // oversized staging buffer
        let mut dst = base.clone();
        assert_eq!(apply_delta(&staged, 2, &mut dst), Ok(2));
        assert_eq!(dst, cur);
    }

    #[test]
    fn malformed_deltas_are_rejected_not_applied() {
        let mut dst = vec![0.0f32; 6];
        assert_eq!(apply_delta(&[], 2, &mut dst), Err(DeltaError));
        // Truncated: claims 2 rows, carries 1.
        let short = [2.0, 0.0, 1.0, 5.0, 5.0];
        assert_eq!(apply_delta(&short, 2, &mut dst), Err(DeltaError));
        // Row index out of range for dst.
        let oob = [1.0, 3.0, 5.0, 5.0];
        assert_eq!(apply_delta(&oob, 2, &mut dst), Err(DeltaError));
        // Non-integer count / index.
        let frac = [0.5];
        assert_eq!(apply_delta(&frac, 2, &mut dst), Err(DeltaError));
        let frac_idx = [1.0, 0.5, 5.0, 5.0];
        assert_eq!(apply_delta(&frac_idx, 2, &mut dst), Err(DeltaError));
        // Negative count.
        assert_eq!(apply_delta(&[-1.0], 2, &mut dst), Err(DeltaError));
        assert_eq!(dst, vec![0.0; 6], "rejected deltas must not write");
    }

    #[test]
    fn late_bad_index_leaves_dst_untouched() {
        // Two rows, second index out of range: the first row must NOT have
        // been applied when the error surfaces (all-or-nothing contract).
        let bad = [2.0, 0.0, 9.0, 5.0, 5.0, 6.0, 6.0];
        let mut dst = vec![0.0f32; 6];
        assert_eq!(apply_delta(&bad, 2, &mut dst), Err(DeltaError));
        assert_eq!(dst, vec![0.0; 6], "partial application leaked through");
    }

    // Malformed-input fuzz: a delta mutated at a random position must
    // either apply exactly (the mutation landed in row data, or still
    // spells a well-formed payload) or return `DeltaError` with `dst`
    // bitwise untouched. Never a panic, never a half-applied buffer.
    // The vendored proptest shim has a fixed default case count, so the
    // cases are driven explicitly with one deterministic seed per case.
    #[test]
    fn mutated_deltas_error_cleanly_or_apply_exactly_256_cases() {
        use proptest::Strategy;
        use rand::SeedableRng;

        for case in 0u64..256 {
            let mut rng = proptest::TestRng::seed_from_u64(
                0x00DE_17A5 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let k = (1usize..6).generate(&mut rng);
            let rows = (1usize..9).generate(&mut rng);
            let base: Vec<f32> = (0..rows * k)
                .map(|_| (-100.0f32..100.0).generate(&mut rng))
                .collect();
            let mut cur = base.clone();
            for r in 0..rows {
                if (0u8..2).generate(&mut rng) == 1 {
                    cur[r * k] = (-100.0f32..100.0).generate(&mut rng);
                }
            }
            let mut delta = encode_delta(&base, &cur, k);

            // Mutate: flip one bit, plant a hostile value, or truncate.
            match (0u8..3).generate(&mut rng) {
                0 => {
                    let at = (0usize..1 << 16).generate(&mut rng) % delta.len();
                    let bit = (0u32..32).generate(&mut rng);
                    delta[at] = f32::from_bits(delta[at].to_bits() ^ (1 << bit));
                }
                1 => {
                    let at = (0usize..1 << 16).generate(&mut rng) % delta.len();
                    let hostile = [f32::NAN, f32::INFINITY, -1.0, 0.5, 33_554_432.0];
                    delta[at] = hostile[(0usize..hostile.len()).generate(&mut rng)];
                }
                _ => {
                    let cut = (0usize..1 << 16).generate(&mut rng) % (delta.len() + 1);
                    delta.truncate(cut);
                }
            }

            let mut dst = base.clone();
            match apply_delta(&delta, k, &mut dst) {
                Err(DeltaError) => {
                    assert!(
                        dst.iter()
                            .zip(&base)
                            .all(|(a, b)| a.to_bits() == b.to_bits()),
                        "case {case}: error path wrote to dst"
                    );
                }
                Ok(n) => {
                    // An accepted payload must apply with row-exact
                    // semantics: re-derive the expectation directly from
                    // the (mutated) payload and compare bitwise.
                    assert_eq!(n, delta[0] as usize, "case {case}");
                    let (indices, data) = delta[1..].split_at(n);
                    let mut expect = base.clone();
                    for (i, &idx) in indices.iter().enumerate() {
                        let r = idx as usize;
                        expect[r * k..r * k + k].copy_from_slice(&data[i * k..i * k + k]);
                    }
                    assert!(
                        dst.iter()
                            .zip(&expect)
                            .all(|(a, b)| a.to_bits() == b.to_bits()),
                        "case {case}: applied rows diverge from the payload"
                    );
                }
            }
        }
    }
}
