//! Asynchronous computing–transmission pipeline (Strategy 3, §3.4).
//!
//! The paper hides pull/push latency behind computation by running several
//! CUDA-stream-style "pull → compute → push" pipelines per worker. The CPU
//! analog here is a three-stage thread pipeline connected by *bounded*
//! channels whose capacity plays the role of the stream count: at most
//! `streams` chunks are in flight, pulls for chunk `s+1` overlap computation
//! of chunk `s`, and pushes trail behind — so, as Fig. 6 puts it,
//! transmission cost drops toward `1/streams` of its synchronous value
//! while compute time is unchanged.

use crossbeam::channel::bounded;
use std::time::{Duration, Instant};

/// Per-stage busy times and wall-clock of one pipelined epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineStats {
    /// Chunks processed.
    pub chunks: usize,
    /// Total time the pull stage spent working.
    pub pull_busy: Duration,
    /// Total time the compute stage spent working.
    pub compute_busy: Duration,
    /// Total time the push stage spent working.
    pub push_busy: Duration,
    /// End-to-end wall-clock time of the pipeline.
    pub wall: Duration,
}

impl PipelineStats {
    /// Fraction of transfer time hidden behind compute:
    /// `1 − (wall − compute) / (pull + push)`, clamped to `[0, 1]`.
    /// 1.0 means transfers were fully overlapped.
    pub fn overlap_efficiency(&self) -> f64 {
        let transfer = self.pull_busy + self.push_busy;
        if transfer.is_zero() {
            return 1.0;
        }
        let exposed = self.wall.saturating_sub(self.compute_busy);
        (1.0 - exposed.as_secs_f64() / transfer.as_secs_f64()).clamp(0.0, 1.0)
    }
}

/// Runs `chunks` work items through a pull → compute → push pipeline with at
/// most `streams` chunks in flight per stage boundary.
///
/// Stage closures receive the chunk index; `pull` produces the chunk's
/// input, `compute` transforms it, `push` consumes the result. Ordering is
/// preserved (chunk `s` completes each stage before `s+1` enters it), which
/// matches the in-order semantics of a single CUDA stream per pipeline.
///
/// # Panics
/// Panics if `streams == 0` or a stage panics (propagated).
pub fn run_pipeline<T, U, P, C, S>(
    chunks: usize,
    streams: usize,
    mut pull: P,
    mut compute: C,
    mut push: S,
) -> PipelineStats
where
    T: Send,
    U: Send,
    P: FnMut(usize) -> T + Send,
    C: FnMut(usize, T) -> U + Send,
    S: FnMut(usize, U) + Send,
{
    assert!(streams > 0, "stream count must be non-zero");
    let (pull_tx, pull_rx) = bounded::<(usize, T)>(streams);
    let (comp_tx, comp_rx) = bounded::<(usize, U)>(streams);

    let start = Instant::now();
    let (pull_busy, compute_busy, push_busy) = std::thread::scope(|scope| {
        let puller = scope.spawn(move || {
            let mut busy = Duration::ZERO;
            for s in 0..chunks {
                let t0 = Instant::now();
                let item = pull(s);
                busy += t0.elapsed();
                if pull_tx.send((s, item)).is_err() {
                    break; // downstream panicked; unwind quietly
                }
            }
            busy
        });
        let computer = scope.spawn(move || {
            let mut busy = Duration::ZERO;
            for (s, item) in pull_rx.iter() {
                let t0 = Instant::now();
                let out = compute(s, item);
                busy += t0.elapsed();
                if comp_tx.send((s, out)).is_err() {
                    break;
                }
            }
            busy
        });
        let pusher = scope.spawn(move || {
            let mut busy = Duration::ZERO;
            for (s, out) in comp_rx.iter() {
                let t0 = Instant::now();
                push(s, out);
                busy += t0.elapsed();
            }
            busy
        });
        (
            puller
                .join()
                .unwrap_or_else(|e| std::panic::resume_unwind(e)),
            computer
                .join()
                .unwrap_or_else(|e| std::panic::resume_unwind(e)),
            pusher
                .join()
                .unwrap_or_else(|e| std::panic::resume_unwind(e)),
        )
    });

    PipelineStats {
        chunks,
        pull_busy,
        compute_busy,
        push_busy,
        wall: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn processes_all_chunks_in_order() {
        let order = parking_lot::Mutex::new(Vec::new());
        let stats = run_pipeline(
            10,
            3,
            |s| s * 2,
            |s, x| {
                assert_eq!(x, s * 2);
                x + 1
            },
            |s, y| {
                assert_eq!(y, s * 2 + 1);
                order.lock().push(s);
            },
        );
        assert_eq!(stats.chunks, 10);
        assert_eq!(*order.lock(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn zero_chunks_is_noop() {
        let stats = run_pipeline(0, 2, |_| (), |_, _| (), |_, _| ());
        assert_eq!(stats.chunks, 0);
        assert_eq!(stats.pull_busy, Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "stream count")]
    fn zero_streams_panics() {
        run_pipeline(1, 0, |_| (), |_, _| (), |_, _| ());
    }

    #[test]
    fn overlap_hides_transfer_time() {
        // pull/push sleep 5ms each, compute sleeps 10ms, 8 chunks, 4 streams.
        // Synchronous cost would be 8·(5+10+5) = 160ms; pipelined should be
        // ≈ 8·10 + 2·5 = 90ms. Assert well under the synchronous bound.
        let naptime = Duration::from_millis(5);
        let stats = run_pipeline(
            8,
            4,
            |_| std::thread::sleep(naptime),
            |_, _| std::thread::sleep(2 * naptime),
            |_, _| std::thread::sleep(naptime),
        );
        let sync_cost = Duration::from_millis(160);
        assert!(stats.wall < sync_cost * 3 / 4, "wall {:?}", stats.wall);
        assert!(
            stats.overlap_efficiency() > 0.5,
            "eff {}",
            stats.overlap_efficiency()
        );
    }

    #[test]
    fn bounded_streams_limit_in_flight_chunks() {
        // With streams = 1 the puller can run at most 2 chunks ahead of the
        // pusher (one in each channel slot); verify the high-water mark.
        let pulled = AtomicUsize::new(0);
        let pushed = AtomicUsize::new(0);
        let max_gap = AtomicUsize::new(0);
        run_pipeline(
            16,
            1,
            |_| {
                let gap = pulled.fetch_add(1, Ordering::SeqCst) + 1 - pushed.load(Ordering::SeqCst);
                max_gap.fetch_max(gap, Ordering::SeqCst);
            },
            |_, _| std::thread::sleep(Duration::from_micros(200)),
            |_, _| {
                pushed.fetch_add(1, Ordering::SeqCst);
            },
        );
        // 1 slot in each channel + 1 in each stage = at most 4 in flight.
        assert!(
            max_gap.load(Ordering::SeqCst) <= 4,
            "gap {}",
            max_gap.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn stats_busy_times_accumulate() {
        let stats = run_pipeline(
            4,
            2,
            |_| std::thread::sleep(Duration::from_millis(2)),
            |_, _| std::thread::sleep(Duration::from_millis(2)),
            |_, _| std::thread::sleep(Duration::from_millis(2)),
        );
        assert!(stats.pull_busy >= Duration::from_millis(8));
        assert!(stats.compute_busy >= Duration::from_millis(8));
        assert!(stats.push_busy >= Duration::from_millis(8));
        assert!(stats.wall >= Duration::from_millis(8));
    }
}
