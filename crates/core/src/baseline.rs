//! Baseline predictor + residual training: biased MF for the framework.
//!
//! The production way to add bias terms without touching the distributed
//! epoch loop (Koren's classic recipe): fit the *baseline predictor*
//! `b_ui = μ + b_u + c_i` with damped means, train plain HCC-MF on the
//! residuals `r_ui − b_ui`, and add the baseline back at prediction time.
//! Residuals are near-zero-mean and de-skewed, which also helps the SGD
//! (the factors no longer have to encode "this user rates high").

use crate::error::HccError;
use crate::report::HccReport;
use crate::train::HccMf;
use hcc_serve::{Recommender, ServeError};
use hcc_sparse::{CooMatrix, Rating};

/// The fitted `μ + b_u + c_i` baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselinePredictor {
    /// Global mean rating.
    pub mu: f32,
    /// Per-user offsets (length m).
    pub user_bias: Vec<f32>,
    /// Per-item offsets (length n).
    pub item_bias: Vec<f32>,
    /// The damping strength used at fit time.
    pub damping: f32,
}

impl BaselinePredictor {
    /// Fits damped-mean biases: `c_i = Σ_{u∈R(i)} (r_ui − μ) / (|R(i)| + β)`
    /// then `b_u = Σ_{i∈R(u)} (r_ui − μ − c_i) / (|R(u)| + β)`. The damping
    /// β shrinks sparsely observed users/items toward zero offset.
    ///
    /// # Panics
    /// Panics if `damping` is negative or non-finite.
    pub fn fit(matrix: &CooMatrix, damping: f32) -> BaselinePredictor {
        assert!(
            damping >= 0.0 && damping.is_finite(),
            "damping must be non-negative"
        );
        let m = matrix.rows() as usize;
        let n = matrix.cols() as usize;
        let mu = matrix.mean_rating() as f32;

        let mut item_sum = vec![0f64; n];
        let mut item_count = vec![0u32; n];
        for e in matrix.entries() {
            item_sum[e.i as usize] += (e.r - mu) as f64;
            item_count[e.i as usize] += 1;
        }
        let item_bias: Vec<f32> = item_sum
            .iter()
            .zip(&item_count)
            .map(|(&s, &c)| (s / (c as f64 + damping as f64)) as f32)
            .collect();

        let mut user_sum = vec![0f64; m];
        let mut user_count = vec![0u32; m];
        for e in matrix.entries() {
            user_sum[e.u as usize] += (e.r - mu - item_bias[e.i as usize]) as f64;
            user_count[e.u as usize] += 1;
        }
        let user_bias: Vec<f32> = user_sum
            .iter()
            .zip(&user_count)
            .map(|(&s, &c)| (s / (c as f64 + damping as f64)) as f32)
            .collect();

        BaselinePredictor {
            mu,
            user_bias,
            item_bias,
            damping,
        }
    }

    /// The baseline prediction `μ + b_u + c_i`.
    #[inline]
    pub fn predict(&self, u: u32, i: u32) -> f32 {
        self.mu + self.user_bias[u as usize] + self.item_bias[i as usize]
    }

    /// The residual matrix `r_ui − b_ui` (same dimensions and sparsity).
    pub fn residual_matrix(&self, matrix: &CooMatrix) -> CooMatrix {
        let entries: Vec<Rating> = matrix
            .entries()
            .iter()
            .map(|e| Rating::new(e.u, e.i, e.r - self.predict(e.u, e.i)))
            .collect();
        CooMatrix::new(matrix.rows(), matrix.cols(), entries)
            .expect("residuals preserve dimensions")
    }

    /// RMSE of the baseline alone over `entries`.
    pub fn rmse(&self, entries: &[Rating]) -> f64 {
        if entries.is_empty() {
            return 0.0;
        }
        let sum: f64 = entries
            .iter()
            .map(|e| {
                let d = e.r as f64 - self.predict(e.u, e.i) as f64;
                d * d
            })
            .sum();
        (sum / entries.len() as f64).sqrt()
    }
}

/// A trained biased model: baseline + factors over residuals.
#[derive(Debug, Clone)]
pub struct BiasedRecommender {
    baseline: BaselinePredictor,
    inner: Recommender,
}

impl BiasedRecommender {
    /// Assembles from a fitted baseline, a residual-training report, and the
    /// original training matrix (for seen-item exclusion).
    pub fn new(
        baseline: BaselinePredictor,
        report: &HccReport,
        train: &CooMatrix,
    ) -> BiasedRecommender {
        BiasedRecommender {
            baseline,
            inner: Recommender::new(report.p.clone(), report.q.clone(), train),
        }
    }

    /// Full prediction `μ + b_u + c_i + p_u·q_i`.
    pub fn predict(&self, u: u32, i: u32) -> f32 {
        self.baseline.predict(u, i) + self.inner.predict(u, i)
    }

    /// RMSE of the full model over `entries`.
    pub fn rmse(&self, entries: &[Rating]) -> f64 {
        if entries.is_empty() {
            return 0.0;
        }
        let sum: f64 = entries
            .iter()
            .map(|e| {
                let d = e.r as f64 - self.predict(e.u, e.i) as f64;
                d * d
            })
            .sum();
        (sum / entries.len() as f64).sqrt()
    }

    /// Top-k unseen items by full prediction; an out-of-range user is a
    /// typed error.
    pub fn top_k(&self, user: u32, count: usize) -> Result<Vec<(u32, f32)>, ServeError> {
        // Rank by residual score + item bias (the user terms are constant
        // per user and don't affect ordering).
        let mut scored: Vec<(u32, f32)> = self
            .inner
            .top_k(user, self.inner.items())? // all unseen, residual-ranked
            .into_iter()
            .map(|(i, s)| (i, s + self.baseline.item_bias[i as usize]))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.truncate(count);
        Ok(scored
            .into_iter()
            .map(|(i, _)| (i, self.predict(user, i)))
            .collect())
    }

    /// The fitted baseline.
    pub fn baseline(&self) -> &BaselinePredictor {
        &self.baseline
    }
}

impl HccMf {
    /// Biased training: fits a damped baseline predictor, trains the
    /// framework on the residuals, and returns both plus a ready-to-serve
    /// [`BiasedRecommender`]. RMSE history in the report is measured on the
    /// *residuals*.
    pub fn train_biased(
        &self,
        matrix: &CooMatrix,
        damping: f32,
    ) -> Result<(BaselinePredictor, HccReport, BiasedRecommender), HccError> {
        let baseline = BaselinePredictor::fit(matrix, damping);
        let residuals = baseline.residual_matrix(matrix);
        let report = self.train(&residuals)?;
        let rec = BiasedRecommender::new(baseline.clone(), &report, matrix);
        Ok((baseline, report, rec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HccConfig, WorkerSpec};
    use hcc_sgd::LearningRate;
    use hcc_sparse::{GenConfig, SyntheticDataset};
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn baseline_fits_pure_bias_data_exactly_without_damping() {
        // r = μ + b_u + c_i with every cell observed → zero residual RMSE.
        let m = 6u32;
        let n = 5u32;
        let mu = 3.0f32;
        let ub: Vec<f32> = (0..m).map(|u| (u as f32 - 2.5) * 0.2).collect();
        let cb: Vec<f32> = (0..n).map(|i| (i as f32 - 2.0) * 0.3).collect();
        let entries: Vec<Rating> = (0..m)
            .flat_map(|u| {
                let ub = &ub;
                let cb = &cb;
                (0..n).map(move |i| Rating::new(u, i, mu + ub[u as usize] + cb[i as usize]))
            })
            .collect();
        let matrix = CooMatrix::new(m, n, entries).unwrap();
        let baseline = BaselinePredictor::fit(&matrix, 0.0);
        assert!(
            baseline.rmse(matrix.entries()) < 1e-5,
            "{}",
            baseline.rmse(matrix.entries())
        );
    }

    #[test]
    fn damping_shrinks_rare_user_bias() {
        // One user with a single extreme rating.
        let entries = vec![
            Rating::new(0, 0, 5.0),
            Rating::new(1, 0, 3.0),
            Rating::new(1, 1, 3.0),
            Rating::new(1, 2, 3.0),
        ];
        let matrix = CooMatrix::new(2, 3, entries).unwrap();
        let loose = BaselinePredictor::fit(&matrix, 0.0);
        let damped = BaselinePredictor::fit(&matrix, 5.0);
        assert!(damped.user_bias[0].abs() < loose.user_bias[0].abs());
    }

    #[test]
    fn residual_matrix_has_near_zero_mean() {
        let ds = SyntheticDataset::generate(GenConfig {
            rows: 100,
            cols: 60,
            nnz: 2_000,
            ..GenConfig::default()
        });
        let baseline = BaselinePredictor::fit(&ds.matrix, 5.0);
        let residuals = baseline.residual_matrix(&ds.matrix);
        assert!(
            residuals.mean_rating().abs() < 0.1,
            "{}",
            residuals.mean_rating()
        );
        assert_eq!(residuals.nnz(), ds.matrix.nnz());
    }

    #[test]
    fn biased_training_beats_plain_on_bias_heavy_data() {
        // Planted model = strong biases + weak interaction + noise.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let m = 150u32;
        let n = 90u32;
        let ub: Vec<f32> = (0..m).map(|_| rng.random_range(-1.5f32..1.5)).collect();
        let cb: Vec<f32> = (0..n).map(|_| rng.random_range(-1.5f32..1.5)).collect();
        let mut entries = Vec::new();
        for _ in 0..5_000 {
            let u = rng.random_range(0..m);
            let i = rng.random_range(0..n);
            let interaction = 0.2 * ((u + i) % 7) as f32 / 7.0;
            entries.push(Rating::new(
                u,
                i,
                3.0 + ub[u as usize] + cb[i as usize] + interaction,
            ));
        }
        let matrix = CooMatrix::new(m, n, entries).unwrap();

        let config = HccConfig::builder()
            .k(4)
            .epochs(15)
            .learning_rate(LearningRate::Constant(0.02))
            .lambda(0.01)
            .workers(vec![WorkerSpec::cpu(2)])
            .track_rmse(true)
            .build();
        let trainer = HccMf::new(config);
        let (_, _, biased) = trainer.train_biased(&matrix, 5.0).unwrap();
        let plain = trainer.train(&matrix).unwrap();
        let plain_rmse = hcc_sgd::rmse(matrix.entries(), &plain.p, &plain.q);
        let biased_rmse = biased.rmse(matrix.entries());
        assert!(
            biased_rmse < plain_rmse * 0.8,
            "biased {biased_rmse} vs plain {plain_rmse}"
        );
    }

    #[test]
    fn biased_recommender_serves_topk() {
        let ds = SyntheticDataset::generate(GenConfig {
            rows: 80,
            cols: 50,
            nnz: 1_500,
            ..GenConfig::default()
        });
        let config = HccConfig::builder()
            .k(4)
            .epochs(5)
            .workers(vec![WorkerSpec::cpu(1)])
            .build();
        let (_, _, rec) = HccMf::new(config).train_biased(&ds.matrix, 5.0).unwrap();
        // User 0 is the Zipf-heaviest and may have rated every item; use a
        // mid-tail user that certainly has unseen items.
        let top = rec.top_k(40, 5).unwrap();
        assert_eq!(top.len(), 5);
        // Descending by full prediction.
        for pair in top.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
        assert!(rec.baseline().mu > 0.0);
    }

    #[test]
    fn empty_entries_rmse_zero() {
        let matrix = CooMatrix::new(2, 2, vec![Rating::new(0, 0, 1.0)]).unwrap();
        let baseline = BaselinePredictor::fit(&matrix, 1.0);
        assert_eq!(baseline.rmse(&[]), 0.0);
    }
}
