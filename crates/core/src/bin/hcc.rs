//! `hcc` — the HCC-MF command line: train, analyze, recommend.
//!
//! ```sh
//! hcc train ratings.txt --k 64 --workers cpu4,gpu8 --out model
//! hcc analyze ratings.txt
//! hcc recommend model.hccmf ratings.txt --user 7
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match hcc_mf::cli::parse(&args) {
        Ok(cmd) => cmd,
        Err(msg) => {
            eprintln!("error: {msg}\n{}", hcc_mf::cli::USAGE);
            return ExitCode::FAILURE;
        }
    };
    let mut stdout = std::io::stdout();
    match hcc_mf::cli::run(cmd, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
