//! Training supervisor: heartbeats, health classification, divergence guard.
//!
//! The supervisor wraps the synchronous epoch loop (Fig. 4 steps ①–④). Each
//! worker stamps a heartbeat when it finishes computing; the server side
//! collects pushes with a bounded-retry timeout instead of blocking forever.
//! At every epoch boundary the supervisor:
//!
//! 1. classifies each worker **healthy / straggler / dead** from its
//!    heartbeat and compute time,
//! 2. checks the epoch loss against the divergence guard (NaN or explosion
//!    past `divergence_factor ×` the best loss seen), rolling back to the
//!    last good in-memory snapshot with learning-rate backoff when it trips,
//! 3. drops dead workers and re-plans the partition over the survivors.
//!
//! Rollbacks are bounded: once `max_rollbacks` are spent the run fails with
//! the typed [`HccError::Diverged`](crate::HccError::Diverged) instead of
//! looping forever.

use hcc_sync::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// Tuning knobs for the fault-tolerance layer. Constructed via
/// [`SupervisorConfig::default`] and adjusted with struct-update syntax.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisorConfig {
    /// How long the server waits for one worker's push before a retry.
    pub heartbeat_timeout: Duration,
    /// Collect attempts per worker per epoch before declaring it dead.
    pub collect_retries: u32,
    /// Multiplier applied to the timeout on each successive retry.
    pub retry_backoff: f64,
    /// A worker whose compute time exceeds `straggler_factor ×` the median
    /// is flagged a straggler (kept, but reported and replanned around by
    /// the normal Algorithm-1 adaptation).
    pub straggler_factor: f64,
    /// Minimum *absolute* excess over the median before the straggler flag
    /// can trip. On sub-millisecond epochs scheduler jitter easily exceeds
    /// any relative factor; this floor keeps the classifier quiet there.
    pub straggler_floor: Duration,
    /// Loss above `divergence_factor × best_loss` (or non-finite) trips the
    /// divergence guard.
    pub divergence_factor: f64,
    /// Rollback budget before giving up with `HccError::Diverged`.
    pub max_rollbacks: u32,
    /// Learning-rate multiplier applied on every rollback.
    pub lr_backoff: f64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            heartbeat_timeout: Duration::from_secs(2),
            collect_retries: 3,
            retry_backoff: 2.0,
            straggler_factor: 3.0,
            straggler_floor: Duration::from_millis(50),
            divergence_factor: 2.0,
            max_rollbacks: 4,
            lr_backoff: 0.5,
        }
    }
}

/// Per-worker health at an epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerHealth {
    /// Heartbeat current, compute time near the fleet median.
    Healthy,
    /// Alive but slower than `straggler_factor ×` the median compute time.
    Straggler,
    /// Missed its heartbeat (crash, panic, or exhausted collect retries).
    Dead,
}

/// Lock-free heartbeat board shared between worker threads and the server.
///
/// Workers stamp a monotonically increasing epoch counter; the supervisor
/// reads it at the epoch boundary. A worker that panics (or is crashed by a
/// [`FaultPlan`](crate::fault::FaultPlan)) flips its `dead` flag so the
/// server can stop waiting on it immediately.
#[derive(Debug)]
pub struct HeartbeatBoard {
    beats: Vec<AtomicU64>,
    dead: Vec<AtomicBool>,
}

impl HeartbeatBoard {
    pub fn new(workers: usize) -> Self {
        HeartbeatBoard {
            beats: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            dead: (0..workers).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// Worker `w` reports it finished epoch `epoch` (stored as `epoch + 1`
    /// so 0 means "never beat").
    pub fn beat(&self, w: usize, epoch: usize) {
        // ordering: Release — pairs with the Acquire in `has_beat`: a
        // supervisor that sees the beat for epoch `e` also sees every
        // write the worker made computing epoch `e`. The epoch's factor
        // data additionally flows through the transport's own
        // synchronization, so this edge guards the *classifier's* view
        // (compute-time stats), not the numeric payload.
        self.beats[w].store(epoch as u64 + 1, Ordering::Release);
    }

    /// True if worker `w` has beaten for `epoch`.
    pub fn has_beat(&self, w: usize, epoch: usize) -> bool {
        // ordering: Acquire — pairs with the Release in `beat` (see there).
        self.beats[w].load(Ordering::Acquire) > epoch as u64
    }

    pub fn mark_dead(&self, w: usize) {
        // ordering: Release — set from the catch_unwind handler after the
        // dying worker's last writes; pairs with `is_dead`'s Acquire so
        // the server's cleanup reads a settled worker state.
        self.dead[w].store(true, Ordering::Release);
    }

    pub fn is_dead(&self, w: usize) -> bool {
        // ordering: Acquire — pairs with the Release in `mark_dead`.
        self.dead[w].load(Ordering::Acquire)
    }

    pub fn len(&self) -> usize {
        self.beats.len()
    }

    pub fn is_empty(&self) -> bool {
        self.beats.is_empty()
    }

    /// Rebuilds the board for a re-packed survivor list, all alive.
    pub fn resize(&mut self, workers: usize) {
        *self = HeartbeatBoard::new(workers);
    }
}

/// Epoch-boundary state machine driven by the training loop.
#[derive(Debug)]
pub struct Supervisor {
    pub cfg: SupervisorConfig,
    pub board: HeartbeatBoard,
    /// Best (lowest) finite loss observed so far; divergence is judged
    /// against this.
    best_loss: f64,
    rollbacks_used: u32,
    /// Cumulative learning-rate scale from divergence backoff.
    lr_scale: f64,
}

impl Supervisor {
    pub fn new(cfg: SupervisorConfig, workers: usize) -> Self {
        Supervisor {
            cfg,
            board: HeartbeatBoard::new(workers),
            best_loss: f64::INFINITY,
            rollbacks_used: 0,
            lr_scale: 1.0,
        }
    }

    /// Seeds the guard with the pre-training loss so the very first epoch
    /// has a baseline to explode against.
    pub fn observe_baseline(&mut self, loss: f64) {
        if loss.is_finite() {
            self.best_loss = self.best_loss.min(loss);
        }
    }

    /// True when `loss` trips the divergence guard.
    pub fn is_diverged(&self, loss: f64) -> bool {
        if !loss.is_finite() {
            return true;
        }
        self.best_loss.is_finite() && loss > self.best_loss * self.cfg.divergence_factor
    }

    /// Registers a good epoch: updates the best loss.
    pub fn accept(&mut self, loss: f64) {
        if loss.is_finite() && loss < self.best_loss {
            self.best_loss = loss;
        }
    }

    /// Spends one rollback and applies learning-rate backoff. Returns the
    /// new cumulative LR scale, or `None` when the budget is exhausted (the
    /// caller then fails with `HccError::Diverged`).
    pub fn rollback(&mut self) -> Option<f64> {
        if self.rollbacks_used >= self.cfg.max_rollbacks {
            return None;
        }
        self.rollbacks_used += 1;
        self.lr_scale *= self.cfg.lr_backoff;
        Some(self.lr_scale)
    }

    pub fn rollbacks_used(&self) -> u32 {
        self.rollbacks_used
    }

    pub fn lr_scale(&self) -> f64 {
        self.lr_scale
    }

    /// Restores a cumulative LR scale (used when resuming from checkpoint).
    pub fn set_lr_scale(&mut self, scale: f64) {
        if scale.is_finite() && scale > 0.0 {
            self.lr_scale = scale;
        }
    }

    /// Classifies every worker after an epoch. `compute_secs[w]` is the
    /// epoch compute time, `missed[w]` is true when the server never
    /// received a valid push (timeout, drop, or corruption), and `beat[w]`
    /// whether the worker's heartbeat arrived for this epoch.
    ///
    /// A worker whose push is missing but whose heartbeat is current (it
    /// computed, the message was lost or poisoned) is a *straggler*: kept,
    /// its shard skipped this epoch. Only a missing push *and* a missing
    /// heartbeat — or an explicit dead flag — means dead.
    pub fn classify(
        &self,
        compute_secs: &[f64],
        missed: &[bool],
        beat: &[bool],
    ) -> Vec<WorkerHealth> {
        let mut alive: Vec<f64> = compute_secs
            .iter()
            .zip(missed)
            .enumerate()
            .filter(|(w, (_, &miss))| !miss && !self.board.is_dead(*w))
            .map(|(_, (&t, _))| t)
            .collect();
        alive.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median = if alive.is_empty() {
            0.0
        } else {
            alive[alive.len() / 2]
        };
        compute_secs
            .iter()
            .zip(missed.iter().zip(beat))
            .enumerate()
            .map(|(w, (&t, (&miss, &beat)))| {
                let slow = median > 0.0
                    && t > median * self.cfg.straggler_factor
                    && t - median > self.cfg.straggler_floor.as_secs_f64();
                if self.board.is_dead(w) || (miss && !beat) {
                    WorkerHealth::Dead
                } else if miss || slow {
                    WorkerHealth::Straggler
                } else {
                    WorkerHealth::Healthy
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeat_board_tracks_beats_and_death() {
        let board = HeartbeatBoard::new(3);
        assert!(!board.has_beat(0, 0));
        board.beat(0, 0);
        assert!(board.has_beat(0, 0));
        assert!(!board.has_beat(0, 1));
        board.beat(0, 5);
        assert!(board.has_beat(0, 3)); // monotone counter covers old epochs
        assert!(!board.is_dead(1));
        board.mark_dead(1);
        assert!(board.is_dead(1));
    }

    #[test]
    fn divergence_guard_trips_on_nan_and_explosion() {
        let mut sup = Supervisor::new(SupervisorConfig::default(), 2);
        sup.observe_baseline(1.0);
        assert!(!sup.is_diverged(1.5));
        assert!(sup.is_diverged(2.5)); // > 2× best
        assert!(sup.is_diverged(f64::NAN));
        assert!(sup.is_diverged(f64::INFINITY));
        sup.accept(0.5);
        assert!(sup.is_diverged(1.2)); // best tightened to 0.5
    }

    #[test]
    fn rollback_budget_is_bounded_and_backs_off_lr() {
        let cfg = SupervisorConfig {
            max_rollbacks: 2,
            lr_backoff: 0.5,
            ..SupervisorConfig::default()
        };
        let mut sup = Supervisor::new(cfg, 1);
        assert_eq!(sup.rollback(), Some(0.5));
        assert_eq!(sup.rollback(), Some(0.25));
        assert_eq!(sup.rollback(), None);
        assert_eq!(sup.rollbacks_used(), 2);
    }

    #[test]
    fn classify_spots_stragglers_and_dead() {
        let sup = Supervisor::new(SupervisorConfig::default(), 4);
        sup.board.mark_dead(3);
        let health = sup.classify(
            &[1.0, 1.1, 9.0, 1.0],
            &[false, false, false, false],
            &[true, true, true, false],
        );
        assert_eq!(health[0], WorkerHealth::Healthy);
        assert_eq!(health[1], WorkerHealth::Healthy);
        assert_eq!(health[2], WorkerHealth::Straggler);
        assert_eq!(health[3], WorkerHealth::Dead);
    }

    #[test]
    fn classify_distinguishes_lost_push_from_dead_worker() {
        let sup = Supervisor::new(SupervisorConfig::default(), 3);
        // Worker 1: push missing but heartbeat current → straggler (alive).
        // Worker 2: push missing and no heartbeat → dead.
        let health = sup.classify(&[1.0, 1.0, 0.0], &[false, true, true], &[true, true, false]);
        assert_eq!(
            health,
            vec![
                WorkerHealth::Healthy,
                WorkerHealth::Straggler,
                WorkerHealth::Dead
            ]
        );
    }
}
