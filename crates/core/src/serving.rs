//! Checkpoint → serving glue: load `.hccmf` files into [`ServedModel`]s
//! and hot-reload running [`ServeEngine`]s from disk.
//!
//! The serving crate (`hcc-serve`) deliberately knows nothing about the
//! on-disk checkpoint formats; this module joins it to
//! [`crate::checkpoint`]. The joint is also the crash-safety boundary for
//! hot reload: a corrupt or truncated checkpoint fails *here*, before
//! [`ServeEngine::reload`] is ever called, so a bad deploy artifact leaves
//! the old model serving untouched.

use crate::checkpoint::load_model;
use crate::error::HccError;
use hcc_comm::Backoff;
use hcc_serve::{Precision, ServeEngine, ServeError, ServedModel};
use hcc_sparse::CooMatrix;
use std::path::Path;
use std::time::Duration;

impl From<ServeError> for HccError {
    fn from(err: ServeError) -> Self {
        HccError::BadInput(err.to_string())
    }
}

/// Loads a v1/v2 model checkpoint and builds an item-sharded serving
/// snapshot from it. `train`, when given, supplies the seen-item filter and
/// entry-weights the shard split; its dimensions must match the checkpoint.
/// Shards are stored at f32 with norm pruning on; use
/// [`load_served_model_with`] to pick a quantized tier.
pub fn load_served_model<P: AsRef<Path>>(
    path: P,
    train: Option<&CooMatrix>,
    shards: usize,
) -> Result<ServedModel, HccError> {
    load_served_model_with(path, train, shards, Precision::F32)
}

/// [`load_served_model`] with an explicit storage precision for the item
/// shards (the `--precision` CLI flag lands here). Checkpoints are always
/// full-precision on disk; quantization happens at build time, so the same
/// artifact can serve at any tier.
pub fn load_served_model_with<P: AsRef<Path>>(
    path: P,
    train: Option<&CooMatrix>,
    shards: usize,
    precision: Precision,
) -> Result<ServedModel, HccError> {
    let (p, q) = load_model(path)?;
    Ok(ServedModel::build_with(
        p, q, train, shards, precision, true,
    )?)
}

/// Default retry budget for [`reload_from_checkpoint`]: three attempts
/// spaced by a 25 ms → 50 ms exponential ladder. Deployment tooling often
/// renames the artifact into place moments before triggering the reload,
/// so a briefly-missing or still-moving file deserves a short wait.
const RELOAD_ATTEMPTS: u32 = 3;
const RELOAD_BACKOFF: Duration = Duration::from_millis(25);

/// Hot-reloads `engine` from a checkpoint on disk; returns the engine's
/// reload count. Any failure — unreadable file, bad magic, CRC mismatch
/// ([`HccError::CorruptCheckpoint`]), factor/`train` shape disagreement —
/// happens before the swap, so the engine keeps serving its current model.
///
/// Transient failures ([`HccError::is_retryable`]: filesystem and
/// transport trouble) are retried a few times with exponential backoff.
/// Deterministic ones — a corrupt artifact, mismatched shapes — fail
/// immediately: re-reading the same bad bytes can't succeed.
pub fn reload_from_checkpoint<P: AsRef<Path>>(
    engine: &ServeEngine,
    path: P,
    train: Option<&CooMatrix>,
    shards: usize,
) -> Result<u64, HccError> {
    reload_with_backoff(
        engine,
        path,
        train,
        shards,
        RELOAD_ATTEMPTS,
        Backoff::new(RELOAD_BACKOFF, 2.0),
    )
}

/// [`reload_from_checkpoint`] with explicit retry tuning. `attempts` is
/// clamped to at least 1; `backoff` supplies the sleep before each retry.
pub fn reload_with_backoff<P: AsRef<Path>>(
    engine: &ServeEngine,
    path: P,
    train: Option<&CooMatrix>,
    shards: usize,
    attempts: u32,
    mut backoff: Backoff,
) -> Result<u64, HccError> {
    let mut attempt = 0;
    loop {
        match load_served_model(path.as_ref(), train, shards) {
            Ok(model) => return Ok(engine.reload(model)),
            Err(err) if !err.is_retryable() => return Err(err),
            Err(err) => {
                attempt += 1;
                if attempt >= attempts.max(1) {
                    return Err(err);
                }
                std::thread::sleep(backoff.next_delay());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::save_model;
    use hcc_sgd::FactorMatrix;
    use std::fs;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("hcc_serving_glue");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn checkpoint_round_trips_into_a_serving_engine() {
        let path = tmp("roundtrip.hccmf");
        let p = FactorMatrix::random(6, 4, 1);
        let q = FactorMatrix::random(9, 4, 2);
        save_model(&path, &p, &q).unwrap();
        let model = load_served_model(&path, None, 3).unwrap();
        assert_eq!((model.users(), model.items(), model.k()), (6, 9, 4));
        let engine = ServeEngine::new(model);
        assert_eq!(engine.top_k(0, 4).unwrap().len(), 4);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_checkpoint_fails_before_the_swap() {
        let path = tmp("corrupt.hccmf");
        let p = FactorMatrix::random(4, 2, 3);
        let q = FactorMatrix::random(5, 2, 4);
        save_model(&path, &p, &q).unwrap();
        let engine = ServeEngine::new(load_served_model(&path, None, 2).unwrap());
        let before = engine.top_k(1, 3).unwrap();

        // Flip one payload byte: the CRC footer must reject the file.
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let err = reload_from_checkpoint(&engine, &path, None, 2).unwrap_err();
        assert!(matches!(err, HccError::CorruptCheckpoint(_)), "{err:?}");

        // The engine never swapped: same answers, zero reloads.
        assert_eq!(engine.top_k(1, 3).unwrap(), before);
        assert_eq!(engine.stats().reloads, 0);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn transient_io_failure_is_retried_until_the_artifact_lands() {
        let path = tmp("transient.hccmf");
        fs::remove_file(&path).ok(); // not there yet: first attempts fail Io
        let seed = tmp("transient_seed.hccmf");
        let p = FactorMatrix::random(4, 2, 9);
        let q = FactorMatrix::random(5, 2, 10);
        save_model(&seed, &p, &q).unwrap();
        let engine = ServeEngine::new(load_served_model(&seed, None, 2).unwrap());

        // A deployer thread renames the artifact into place mid-retry.
        let landing = path.clone();
        let src = seed.clone();
        let deployer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(60));
            fs::copy(&src, &landing).unwrap();
        });
        let reloads = reload_with_backoff(
            &engine,
            &path,
            None,
            2,
            10,
            Backoff::new(Duration::from_millis(25), 1.0),
        )
        .unwrap();
        deployer.join().unwrap();
        assert_eq!(reloads, 1);
        assert_eq!(engine.stats().reloads, 1);

        // With the file still missing and the budget exhausted, the final
        // error is the transient one.
        fs::remove_file(&path).ok();
        let err = reload_with_backoff(
            &engine,
            &path,
            None,
            2,
            2,
            Backoff::new(Duration::from_millis(1), 1.0),
        )
        .unwrap_err();
        assert!(matches!(err, HccError::Io(_)), "{err:?}");
        fs::remove_file(&seed).ok();
    }

    #[test]
    fn corrupt_checkpoint_is_not_retried() {
        let path = tmp("corrupt_fastfail.hccmf");
        let p = FactorMatrix::random(4, 2, 11);
        let q = FactorMatrix::random(5, 2, 12);
        save_model(&path, &p, &q).unwrap();
        let engine = ServeEngine::new(load_served_model(&path, None, 2).unwrap());
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();

        // A 5 s ladder would make even one retry obvious; the corrupt
        // artifact must fail deterministically without sleeping at all.
        let t0 = std::time::Instant::now();
        let err = reload_with_backoff(
            &engine,
            &path,
            None,
            2,
            5,
            Backoff::new(Duration::from_secs(5), 2.0),
        )
        .unwrap_err();
        assert!(matches!(err, HccError::CorruptCheckpoint(_)), "{err:?}");
        assert!(t0.elapsed() < Duration::from_secs(2), "reload slept");
        assert_eq!(engine.stats().reloads, 0);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn precision_tiers_load_from_the_same_checkpoint() {
        let path = tmp("tiers.hccmf");
        let p = FactorMatrix::random(6, 8, 7);
        let q = FactorMatrix::random(40, 8, 8);
        save_model(&path, &p, &q).unwrap();
        let f32_model = load_served_model_with(&path, None, 2, Precision::F32).unwrap();
        let oracle = ServeEngine::new(f32_model).top_k(0, 5).unwrap();
        for tier in [Precision::Fp16, Precision::Int8] {
            let model = load_served_model_with(&path, None, 2, tier).unwrap();
            assert_eq!(model.precision(), tier);
            let got = ServeEngine::new(model).top_k(0, 5).unwrap();
            // Random factors are well separated at these sizes; ranks hold
            // across tiers even at int8.
            let gi: Vec<u32> = got.iter().map(|e| e.0).collect();
            let oi: Vec<u32> = oracle.iter().map(|e| e.0).collect();
            assert_eq!(gi, oi, "{tier}: {got:?} vs {oracle:?}");
        }
        fs::remove_file(&path).ok();
    }

    #[test]
    fn mismatched_train_matrix_is_rejected() {
        let path = tmp("mismatch.hccmf");
        let p = FactorMatrix::random(4, 2, 5);
        let q = FactorMatrix::random(5, 2, 6);
        save_model(&path, &p, &q).unwrap();
        let train = CooMatrix::new(7, 5, vec![]).unwrap(); // 7 != 4 users
        let err = load_served_model(&path, Some(&train), 2).unwrap_err();
        assert!(matches!(err, HccError::BadInput(_)), "{err:?}");
        fs::remove_file(&path).ok();
    }
}
