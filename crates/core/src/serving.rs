//! Checkpoint → serving glue: load `.hccmf` files into [`ServedModel`]s
//! and hot-reload running [`ServeEngine`]s from disk.
//!
//! The serving crate (`hcc-serve`) deliberately knows nothing about the
//! on-disk checkpoint formats; this module joins it to
//! [`crate::checkpoint`]. The joint is also the crash-safety boundary for
//! hot reload: a corrupt or truncated checkpoint fails *here*, before
//! [`ServeEngine::reload`] is ever called, so a bad deploy artifact leaves
//! the old model serving untouched.

use crate::checkpoint::load_model;
use crate::error::HccError;
use hcc_serve::{ServeEngine, ServeError, ServedModel};
use hcc_sparse::CooMatrix;
use std::path::Path;

impl From<ServeError> for HccError {
    fn from(err: ServeError) -> Self {
        HccError::BadInput(err.to_string())
    }
}

/// Loads a v1/v2 model checkpoint and builds an item-sharded serving
/// snapshot from it. `train`, when given, supplies the seen-item filter and
/// entry-weights the shard split; its dimensions must match the checkpoint.
pub fn load_served_model<P: AsRef<Path>>(
    path: P,
    train: Option<&CooMatrix>,
    shards: usize,
) -> Result<ServedModel, HccError> {
    let (p, q) = load_model(path)?;
    Ok(ServedModel::build(p, q, train, shards)?)
}

/// Hot-reloads `engine` from a checkpoint on disk; returns the engine's
/// reload count. Any failure — unreadable file, bad magic, CRC mismatch
/// ([`HccError::CorruptCheckpoint`]), factor/`train` shape disagreement —
/// happens before the swap, so the engine keeps serving its current model.
pub fn reload_from_checkpoint<P: AsRef<Path>>(
    engine: &ServeEngine,
    path: P,
    train: Option<&CooMatrix>,
    shards: usize,
) -> Result<u64, HccError> {
    let model = load_served_model(path, train, shards)?;
    Ok(engine.reload(model))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::save_model;
    use hcc_sgd::FactorMatrix;
    use std::fs;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("hcc_serving_glue");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn checkpoint_round_trips_into_a_serving_engine() {
        let path = tmp("roundtrip.hccmf");
        let p = FactorMatrix::random(6, 4, 1);
        let q = FactorMatrix::random(9, 4, 2);
        save_model(&path, &p, &q).unwrap();
        let model = load_served_model(&path, None, 3).unwrap();
        assert_eq!((model.users(), model.items(), model.k()), (6, 9, 4));
        let engine = ServeEngine::new(model);
        assert_eq!(engine.top_k(0, 4).unwrap().len(), 4);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_checkpoint_fails_before_the_swap() {
        let path = tmp("corrupt.hccmf");
        let p = FactorMatrix::random(4, 2, 3);
        let q = FactorMatrix::random(5, 2, 4);
        save_model(&path, &p, &q).unwrap();
        let engine = ServeEngine::new(load_served_model(&path, None, 2).unwrap());
        let before = engine.top_k(1, 3).unwrap();

        // Flip one payload byte: the CRC footer must reject the file.
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let err = reload_from_checkpoint(&engine, &path, None, 2).unwrap_err();
        assert!(matches!(err, HccError::CorruptCheckpoint(_)), "{err:?}");

        // The engine never swapped: same answers, zero reloads.
        assert_eq!(engine.top_k(1, 3).unwrap(), before);
        assert_eq!(engine.stats().reloads, 0);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn mismatched_train_matrix_is_rejected() {
        let path = tmp("mismatch.hccmf");
        let p = FactorMatrix::random(4, 2, 5);
        let q = FactorMatrix::random(5, 2, 6);
        save_model(&path, &p, &q).unwrap();
        let train = CooMatrix::new(7, 5, vec![]).unwrap(); // 7 != 4 users
        let err = load_served_model(&path, Some(&train), 2).unwrap_err();
        assert!(matches!(err, HccError::BadInput(_)), "{err:?}");
        fs::remove_file(&path).ok();
    }
}
