//! Checkpoint → serving glue: load `.hccmf` files into [`ServedModel`]s
//! and hot-reload running [`ServeEngine`]s from disk.
//!
//! The serving crate (`hcc-serve`) deliberately knows nothing about the
//! on-disk checkpoint formats; this module joins it to
//! [`crate::checkpoint`]. The joint is also the crash-safety boundary for
//! hot reload: a corrupt or truncated checkpoint fails *here*, before
//! [`ServeEngine::reload`] is ever called, so a bad deploy artifact leaves
//! the old model serving untouched.

use crate::checkpoint::load_model;
use crate::error::HccError;
use hcc_serve::{Precision, ServeEngine, ServeError, ServedModel};
use hcc_sparse::CooMatrix;
use std::path::Path;

impl From<ServeError> for HccError {
    fn from(err: ServeError) -> Self {
        HccError::BadInput(err.to_string())
    }
}

/// Loads a v1/v2 model checkpoint and builds an item-sharded serving
/// snapshot from it. `train`, when given, supplies the seen-item filter and
/// entry-weights the shard split; its dimensions must match the checkpoint.
/// Shards are stored at f32 with norm pruning on; use
/// [`load_served_model_with`] to pick a quantized tier.
pub fn load_served_model<P: AsRef<Path>>(
    path: P,
    train: Option<&CooMatrix>,
    shards: usize,
) -> Result<ServedModel, HccError> {
    load_served_model_with(path, train, shards, Precision::F32)
}

/// [`load_served_model`] with an explicit storage precision for the item
/// shards (the `--precision` CLI flag lands here). Checkpoints are always
/// full-precision on disk; quantization happens at build time, so the same
/// artifact can serve at any tier.
pub fn load_served_model_with<P: AsRef<Path>>(
    path: P,
    train: Option<&CooMatrix>,
    shards: usize,
    precision: Precision,
) -> Result<ServedModel, HccError> {
    let (p, q) = load_model(path)?;
    Ok(ServedModel::build_with(
        p, q, train, shards, precision, true,
    )?)
}

/// Hot-reloads `engine` from a checkpoint on disk; returns the engine's
/// reload count. Any failure — unreadable file, bad magic, CRC mismatch
/// ([`HccError::CorruptCheckpoint`]), factor/`train` shape disagreement —
/// happens before the swap, so the engine keeps serving its current model.
pub fn reload_from_checkpoint<P: AsRef<Path>>(
    engine: &ServeEngine,
    path: P,
    train: Option<&CooMatrix>,
    shards: usize,
) -> Result<u64, HccError> {
    let model = load_served_model(path, train, shards)?;
    Ok(engine.reload(model))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::save_model;
    use hcc_sgd::FactorMatrix;
    use std::fs;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("hcc_serving_glue");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn checkpoint_round_trips_into_a_serving_engine() {
        let path = tmp("roundtrip.hccmf");
        let p = FactorMatrix::random(6, 4, 1);
        let q = FactorMatrix::random(9, 4, 2);
        save_model(&path, &p, &q).unwrap();
        let model = load_served_model(&path, None, 3).unwrap();
        assert_eq!((model.users(), model.items(), model.k()), (6, 9, 4));
        let engine = ServeEngine::new(model);
        assert_eq!(engine.top_k(0, 4).unwrap().len(), 4);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_checkpoint_fails_before_the_swap() {
        let path = tmp("corrupt.hccmf");
        let p = FactorMatrix::random(4, 2, 3);
        let q = FactorMatrix::random(5, 2, 4);
        save_model(&path, &p, &q).unwrap();
        let engine = ServeEngine::new(load_served_model(&path, None, 2).unwrap());
        let before = engine.top_k(1, 3).unwrap();

        // Flip one payload byte: the CRC footer must reject the file.
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let err = reload_from_checkpoint(&engine, &path, None, 2).unwrap_err();
        assert!(matches!(err, HccError::CorruptCheckpoint(_)), "{err:?}");

        // The engine never swapped: same answers, zero reloads.
        assert_eq!(engine.top_k(1, 3).unwrap(), before);
        assert_eq!(engine.stats().reloads, 0);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn precision_tiers_load_from_the_same_checkpoint() {
        let path = tmp("tiers.hccmf");
        let p = FactorMatrix::random(6, 8, 7);
        let q = FactorMatrix::random(40, 8, 8);
        save_model(&path, &p, &q).unwrap();
        let f32_model = load_served_model_with(&path, None, 2, Precision::F32).unwrap();
        let oracle = ServeEngine::new(f32_model).top_k(0, 5).unwrap();
        for tier in [Precision::Fp16, Precision::Int8] {
            let model = load_served_model_with(&path, None, 2, tier).unwrap();
            assert_eq!(model.precision(), tier);
            let got = ServeEngine::new(model).top_k(0, 5).unwrap();
            // Random factors are well separated at these sizes; ranks hold
            // across tiers even at int8.
            let gi: Vec<u32> = got.iter().map(|e| e.0).collect();
            let oi: Vec<u32> = oracle.iter().map(|e| e.0).collect();
            assert_eq!(gi, oi, "{tier}: {got:?} vs {oracle:?}");
        }
        fs::remove_file(&path).ok();
    }

    #[test]
    fn mismatched_train_matrix_is_rejected() {
        let path = tmp("mismatch.hccmf");
        let p = FactorMatrix::random(4, 2, 5);
        let q = FactorMatrix::random(5, 2, 6);
        save_model(&path, &p, &q).unwrap();
        let train = CooMatrix::new(7, 5, vec![]).unwrap(); // 7 != 4 users
        let err = load_served_model(&path, Some(&train), 2).unwrap_err();
        assert!(matches!(err, HccError::BadInput(_)), "{err:?}");
        fs::remove_file(&path).ok();
    }
}
