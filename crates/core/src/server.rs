//! Server-side state: the global feature matrices, region layouts, the
//! synchronization merge (step ④ of Fig. 4), and the node-sharded
//! parameter server.
//!
//! With a row grid, `P` rows are owned exclusively by workers, but any two
//! workers can update the same `Q` row — the WAW race §3.1 warns about. The
//! server therefore *merges* pushed `Q` copies with one multiply-add per
//! parameter: `q_global = Σ_i w_i · q_i`, weighted by each worker's data
//! share, which keeps `Q` a convex combination of worker results.
//!
//! [`ShardedServer`] splits that server across N shard endpoints, each
//! owning a contiguous row range of the synchronized region (the CuMF_SGD
//! scale-out layout), and generalizes "Transmit Q only" to per-shard
//! row-delta shipping: a push to a shard carries only the rows the worker
//! actually touched since the last publish.

use hcc_comm::delta::{apply_delta, encode_delta, max_delta_len};
use hcc_comm::{CommError, Precision, TransferStrategy, Transport};
use hcc_partition::ShardRouter;
use hcc_sync::{Arc, AtomicU64, Ordering, RwLock};
use std::time::{Duration, Instant};

/// Float offsets/lengths of a worker's view of the pull and push regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionLayout {
    /// Pull region length in floats (shared by all workers).
    pub pull_len: usize,
    /// Push buffer length in floats (max over workers).
    pub push_len: usize,
    /// Offset of `Q` within the pull region.
    pub pull_q_offset: usize,
    /// Offset of `Q` within a push buffer.
    pub push_q_offset: usize,
}

/// Computes region layouts for a strategy. Under `FullPq` the pull region is
/// `[P | Q]` and each push buffer `[P_rows | Q]` (sized for the largest row
/// range); under the optimized strategies both regions hold only `Q`.
pub fn region_layout(
    strategy: TransferStrategy,
    m: usize,
    n: usize,
    k: usize,
    max_assigned_rows: usize,
) -> RegionLayout {
    match strategy {
        TransferStrategy::FullPq => RegionLayout {
            pull_len: (m + n) * k,
            push_len: (max_assigned_rows + n) * k,
            pull_q_offset: m * k,
            push_q_offset: max_assigned_rows * k,
        },
        TransferStrategy::QOnly | TransferStrategy::HalfQ => RegionLayout {
            pull_len: n * k,
            push_len: n * k,
            pull_q_offset: 0,
            push_q_offset: 0,
        },
    }
}

/// Accumulates `acc += w·src` — the server's multiply-add merge step.
///
/// # Panics
/// Panics if lengths differ.
pub fn merge_weighted(acc: &mut [f32], src: &[f32], w: f32) {
    assert_eq!(acc.len(), src.len(), "merge length mismatch");
    for (a, &s) in acc.iter_mut().zip(src) {
        *a += w * s;
    }
}

/// In-place incremental merge used by the asynchronous path:
/// `global = (1−w)·global + w·src` per element.
///
/// # Panics
/// Panics if lengths differ.
pub fn merge_incremental(global: &mut [f32], src: &[f32], w: f32) {
    assert_eq!(global.len(), src.len(), "merge length mismatch");
    for (g, &s) in global.iter_mut().zip(src) {
        *g = (1.0 - w) * *g + w * s;
    }
}

/// Normalized merge weights from shard sizes (falls back to uniform when
/// every shard is empty).
pub fn merge_weights(shard_sizes: &[usize]) -> Vec<f32> {
    let total: usize = shard_sizes.iter().sum();
    if total == 0 {
        return vec![1.0 / shard_sizes.len().max(1) as f32; shard_sizes.len()];
    }
    shard_sizes
        .iter()
        .map(|&s| s as f32 / total as f32)
        .collect()
}

// ---------------------------------------------------------------------------
// Node-sharded parameter server
// ---------------------------------------------------------------------------

/// Delta-shipping counters for a [`ShardedServer`] (monotonic totals).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeltaStats {
    /// Rows actually shipped across all pushes (touched rows only).
    pub rows_shipped: u64,
    /// Rows a full-buffer push would have shipped.
    pub rows_total: u64,
    /// Push bytes on the wire under delta shipping (headers excluded:
    /// payload elements × bytes-per-element, comparable across transports).
    pub bytes_shipped: u64,
    /// Push bytes full-buffer shipping would have cost.
    pub bytes_full: u64,
}

/// A parameter server sharded by contiguous row range across N inner
/// [`Transport`] endpoints — one per simulated node.
///
/// The synchronized region (e.g. `Q` under the Q-only strategy) is treated
/// as `region_len / k` rows; a [`ShardRouter`] tiles those rows across the
/// shards, and every RPC is routed by range:
///
/// * `publish` splits the region and publishes each slice to its shard,
///   keeping a server-side snapshot as the delta base;
/// * `pull` reassembles the region from per-shard pulls (disjoint ranges,
///   so the result is bit-identical to a single-endpoint pull);
/// * `push` encodes, per shard, only the rows that differ bitwise from the
///   snapshot ([`encode_delta`]) — the "Transmit Q only" idea applied
///   row-wise within each shard;
/// * `collect` seeds the destination from the snapshot and applies each
///   shard's delta, reconstructing the worker's buffer bit-for-bit (an
///   unshipped row is, by construction, bit-equal to the snapshot).
///
/// Sequence numbering and idempotent dedup live in the inner transports
/// (each [`hcc_comm::CommSocket`] shard keeps its own per-worker seq), so
/// PR 7's retry/dedup guarantees hold per shard link.
pub struct ShardedServer {
    router: ShardRouter,
    k: usize,
    precision: Precision,
    shards: Vec<Arc<dyn Transport>>,
    /// Server-side copy of the last published region: the delta base for
    /// pushes and the reconstruction base for collects.
    published: RwLock<Vec<f32>>,
    pull_bytes: AtomicU64,
    push_bytes: AtomicU64,
    rows_shipped: AtomicU64,
    rows_total: AtomicU64,
    bytes_full: AtomicU64,
}

impl ShardedServer {
    /// Wraps `shards` (one endpoint per node) behind a row router over a
    /// `region_len`-element region of `k`-element rows.
    ///
    /// # Panics
    /// Panics if `shards` is empty, its length differs from the router's
    /// shard count, or `k` is zero.
    pub fn new(
        router: ShardRouter,
        k: usize,
        region_len: usize,
        precision: Precision,
        shards: Vec<Arc<dyn Transport>>,
    ) -> ShardedServer {
        assert!(k > 0, "k must be positive");
        assert_eq!(
            router.shards(),
            shards.len(),
            "router shard count must match endpoints"
        );
        assert!(!shards.is_empty(), "need at least one shard");
        assert_eq!(
            router.n_rows() * k,
            region_len - region_len % k,
            "router must tile the region's whole rows"
        );
        ShardedServer {
            router,
            k,
            precision,
            shards,
            published: RwLock::new(vec![0f32; region_len]),
            pull_bytes: AtomicU64::new(0),
            push_bytes: AtomicU64::new(0),
            rows_shipped: AtomicU64::new(0),
            rows_total: AtomicU64::new(0),
            bytes_full: AtomicU64::new(0),
        }
    }

    /// Worst-case per-shard push-buffer length in elements (what the inner
    /// transports' push regions must be sized for).
    pub fn shard_push_len(router: &ShardRouter, shard: usize, k: usize) -> usize {
        max_delta_len(router.range(shard).len(), k)
    }

    /// The element range shard `s` owns within the region.
    fn elems(&self, shard: usize) -> std::ops::Range<usize> {
        let r = self.router.range(shard);
        r.start * self.k..r.end * self.k
    }

    /// The row router in use.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Number of server shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Cumulative delta-shipping accounting.
    pub fn delta_stats(&self) -> DeltaStats {
        DeltaStats {
            // ordering: Relaxed — statistics read for reports.
            rows_shipped: self.rows_shipped.load(Ordering::Relaxed),
            // ordering: Relaxed — statistic (see above).
            rows_total: self.rows_total.load(Ordering::Relaxed),
            // ordering: Relaxed — statistic (see above).
            bytes_shipped: self.push_bytes.load(Ordering::Relaxed),
            // ordering: Relaxed — statistic (see above).
            bytes_full: self.bytes_full.load(Ordering::Relaxed),
        }
    }

    /// Encodes the delta for one worker push against the current snapshot
    /// and ships it to shard `s` via `send`.
    fn push_shard(&self, shard: usize, src: &[f32], send: impl FnOnce(&[f32])) {
        let elems = self.elems(shard);
        if src.len() < elems.end {
            return; // short push: nothing for this shard's range
        }
        let snapshot = self.published.read();
        let delta = encode_delta(&snapshot[elems.clone()], &src[elems.clone()], self.k);
        drop(snapshot);
        let touched = delta[0] as u64;
        let bpe = self.precision.bytes_per_element();
        // ordering: Relaxed — delta-accounting statistics.
        self.rows_shipped.fetch_add(touched, Ordering::Relaxed);
        // ordering: Relaxed — statistic (see above).
        self.rows_total
            .fetch_add((elems.len() / self.k) as u64, Ordering::Relaxed);
        // ordering: Relaxed — statistic (see above).
        self.push_bytes
            .fetch_add(delta.len() as u64 * bpe, Ordering::Relaxed);
        // ordering: Relaxed — statistic (see above).
        self.bytes_full
            .fetch_add(elems.len() as u64 * bpe, Ordering::Relaxed);
        send(&delta);
    }

    /// Collects one shard's delta into `dst` (the full region buffer),
    /// seeding the shard's range from the snapshot first.
    fn apply_shard(
        &self,
        shard: usize,
        worker: usize,
        dst: &mut [f32],
        deadline: Option<Instant>,
    ) -> Result<(), CommError> {
        let elems = self.elems(shard);
        if dst.len() < elems.end {
            return Ok(()); // short destination: range not requested
        }
        let mut staging = vec![0f32; max_delta_len(elems.len() / self.k, self.k)];
        match deadline {
            None => self.shards[shard].collect(worker, &mut staging),
            Some(d) => {
                let now = Instant::now();
                if now >= d {
                    return Err(CommError::Timeout);
                }
                self.shards[shard].collect_timeout(worker, &mut staging, d - now)?;
            }
        }
        let region = &mut dst[elems.clone()];
        {
            let snapshot = self.published.read();
            region.copy_from_slice(&snapshot[elems]);
        }
        // A malformed delta (possible only under deliberate corruption
        // that beat the CRC) leaves the snapshot rows in place — the same
        // degradation as a dropped push.
        let _ = apply_delta(&staging, self.k, region);
        Ok(())
    }
}

impl Transport for ShardedServer {
    fn publish(&self, src: &[f32]) {
        {
            let mut snapshot = self.published.write();
            let n = src.len().min(snapshot.len());
            snapshot[..n].copy_from_slice(&src[..n]);
        }
        for s in 0..self.shards.len() {
            let elems = self.elems(s);
            if src.len() >= elems.end {
                self.shards[s].publish(&src[elems]);
            }
        }
    }

    fn pull(&self, worker: usize, dst: &mut [f32]) {
        let bpe = self.precision.bytes_per_element();
        for s in 0..self.shards.len() {
            let elems = self.elems(s);
            if dst.len() >= elems.end {
                self.shards[s].pull(worker, &mut dst[elems.clone()]);
                // ordering: Relaxed — wire-byte statistic.
                self.pull_bytes
                    .fetch_add(elems.len() as u64 * bpe, Ordering::Relaxed);
            }
        }
    }

    fn push(&self, worker: usize, src: &[f32]) {
        for s in 0..self.shards.len() {
            self.push_shard(s, src, |delta| self.shards[s].push(worker, delta));
        }
    }

    fn push_duplicate(&self, worker: usize, src: &[f32]) {
        // Re-encoding is deterministic (the snapshot cannot change between
        // a push and its wire duplicate in the lock-step loop), so the
        // duplicate carries identical bytes and the per-shard dedup holds.
        for s in 0..self.shards.len() {
            self.push_shard(s, src, |delta| self.shards[s].push_duplicate(worker, delta));
        }
    }

    fn collect(&self, worker: usize, dst: &mut [f32]) {
        for s in 0..self.shards.len() {
            let _ = self.apply_shard(s, worker, dst, None);
        }
    }

    fn collect_timeout(
        &self,
        worker: usize,
        dst: &mut [f32],
        timeout: Duration,
    ) -> Result<(), CommError> {
        // One deadline across all shards: a slow shard eats into the
        // remaining budget instead of multiplying it.
        let deadline = Instant::now() + timeout;
        for s in 0..self.shards.len() {
            self.apply_shard(s, worker, dst, Some(deadline))?;
        }
        Ok(())
    }

    fn wire_bytes(&self) -> u64 {
        let (pull, push) = self.wire_bytes_by_dir();
        pull + push
    }

    fn wire_bytes_by_dir(&self) -> (u64, u64) {
        // ordering: Relaxed — statistics read for end-of-run reports.
        (
            self.pull_bytes.load(Ordering::Relaxed),
            // ordering: Relaxed — statistic (see above).
            self.push_bytes.load(Ordering::Relaxed),
        )
    }

    fn workers(&self) -> usize {
        self.shards.first().map_or(0, |s| s.workers())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_full_pq() {
        let l = region_layout(TransferStrategy::FullPq, 100, 20, 8, 40);
        assert_eq!(l.pull_len, 120 * 8);
        assert_eq!(l.pull_q_offset, 800);
        assert_eq!(l.push_len, 60 * 8);
        assert_eq!(l.push_q_offset, 320);
    }

    #[test]
    fn layout_q_only() {
        for s in [TransferStrategy::QOnly, TransferStrategy::HalfQ] {
            let l = region_layout(s, 100, 20, 8, 40);
            assert_eq!(l.pull_len, 160);
            assert_eq!(l.push_len, 160);
            assert_eq!(l.pull_q_offset, 0);
        }
    }

    #[test]
    fn weighted_merge_is_convex_combination() {
        let mut acc = vec![0.0f32; 3];
        merge_weighted(&mut acc, &[1.0, 2.0, 3.0], 0.25);
        merge_weighted(&mut acc, &[5.0, 6.0, 7.0], 0.75);
        assert_eq!(acc, vec![4.0, 5.0, 6.0]);
    }

    #[test]
    fn incremental_merge_moves_toward_src() {
        let mut g = vec![0.0f32, 10.0];
        merge_incremental(&mut g, &[10.0, 0.0], 0.5);
        assert_eq!(g, vec![5.0, 5.0]);
        merge_incremental(&mut g, &[5.0, 5.0], 1.0);
        assert_eq!(g, vec![5.0, 5.0]);
    }

    #[test]
    fn weights_normalize() {
        assert_eq!(merge_weights(&[10, 30]), vec![0.25, 0.75]);
        let uniform = merge_weights(&[0, 0, 0]);
        assert!((uniform.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn merge_length_mismatch_panics() {
        merge_weighted(&mut [0.0], &[1.0, 2.0], 1.0);
    }

    /// A sharded server over CommShared inners sized per shard range.
    fn sharded(workers: usize, rows: usize, k: usize, shards: usize) -> ShardedServer {
        let router = ShardRouter::uniform(rows, shards);
        let inners: Vec<Arc<dyn Transport>> = (0..shards)
            .map(|s| {
                let pull = router.range(s).len() * k;
                let push = ShardedServer::shard_push_len(&router, s, k);
                Arc::new(hcc_comm::CommShared::new(
                    workers,
                    pull,
                    push,
                    Precision::Fp32,
                )) as Arc<dyn Transport>
            })
            .collect();
        ShardedServer::new(router, k, rows * k, Precision::Fp32, inners)
    }

    #[test]
    fn sharded_roundtrip_reconstructs_bit_for_bit() {
        let (rows, k) = (10, 3);
        let t = sharded(2, rows, k, 4);
        let region: Vec<f32> = (0..rows * k).map(|i| i as f32 * 0.25 - 3.0).collect();
        t.publish(&region);
        for w in 0..2 {
            let mut pulled = vec![0f32; rows * k];
            t.pull(w, &mut pulled);
            assert_eq!(pulled, region, "worker {w} sharded pull mismatch");
            // Touch a few rows spread across different shards.
            let mut local = pulled.clone();
            local[0] += 1.0; // row 0
            local[4 * k] = f32::MIN_POSITIVE; // row 4
            local[9 * k + k - 1] = -0.0; // row 9 (bitwise change)
            t.push(w, &local);
            let mut collected = vec![0f32; rows * k];
            t.collect(w, &mut collected);
            let a: Vec<u32> = collected.iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = local.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "worker {w} reconstruction not bit-identical");
        }
    }

    #[test]
    fn sharded_push_ships_only_touched_rows() {
        let (rows, k) = (12, 4);
        let t = sharded(1, rows, k, 3);
        let region = vec![1.0f32; rows * k];
        t.publish(&region);
        let mut local = region.clone();
        local[0] = 2.0; // row 0 → shard 0
        local[11 * k] = 2.0; // row 11 → shard 2
        t.push(0, &local);
        let mut got = vec![0f32; rows * k];
        t.collect(0, &mut got);
        assert_eq!(got, local);
        let stats = t.delta_stats();
        assert_eq!(stats.rows_shipped, 2);
        assert_eq!(stats.rows_total, 12);
        // 2 touched rows + per-shard framing (count + index elements).
        let expected = (hcc_comm::delta_len(1, k) * 2 + hcc_comm::delta_len(0, k)) as u64 * 4;
        assert_eq!(stats.bytes_shipped, expected);
        assert_eq!(stats.bytes_full, (rows * k * 4) as u64);
        assert!(stats.bytes_shipped < stats.bytes_full);
    }

    #[test]
    fn sharded_collect_timeout_propagates() {
        let t = sharded(1, 8, 2, 2);
        let mut dst = vec![0f32; 16];
        assert_eq!(
            t.collect_timeout(0, &mut dst, Duration::from_millis(20)),
            Err(CommError::Timeout)
        );
        t.publish(&[0.5f32; 16]);
        let mut local = vec![0.5f32; 16];
        local[3] = 9.0;
        t.push(0, &local);
        t.collect_timeout(0, &mut dst, Duration::from_secs(1))
            .unwrap();
        assert_eq!(dst, local);
    }

    #[test]
    fn single_shard_matches_unsharded_semantics() {
        let t = sharded(2, 6, 2, 1);
        let region: Vec<f32> = (0..12).map(|i| i as f32).collect();
        t.publish(&region);
        let mut dst = vec![0f32; 12];
        t.pull(1, &mut dst);
        assert_eq!(dst, region);
        assert_eq!(t.num_shards(), 1);
        assert_eq!(t.workers(), 2);
        let (pull, push) = t.wire_bytes_by_dir();
        assert_eq!(pull, 48);
        assert_eq!(push, 0);
        assert_eq!(t.wire_bytes(), 48);
    }
}
