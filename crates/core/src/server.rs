//! Server-side state: the global feature matrices, region layouts, and the
//! synchronization merge (step ④ of Fig. 4).
//!
//! With a row grid, `P` rows are owned exclusively by workers, but any two
//! workers can update the same `Q` row — the WAW race §3.1 warns about. The
//! server therefore *merges* pushed `Q` copies with one multiply-add per
//! parameter: `q_global = Σ_i w_i · q_i`, weighted by each worker's data
//! share, which keeps `Q` a convex combination of worker results.

use hcc_comm::TransferStrategy;

/// Float offsets/lengths of a worker's view of the pull and push regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionLayout {
    /// Pull region length in floats (shared by all workers).
    pub pull_len: usize,
    /// Push buffer length in floats (max over workers).
    pub push_len: usize,
    /// Offset of `Q` within the pull region.
    pub pull_q_offset: usize,
    /// Offset of `Q` within a push buffer.
    pub push_q_offset: usize,
}

/// Computes region layouts for a strategy. Under `FullPq` the pull region is
/// `[P | Q]` and each push buffer `[P_rows | Q]` (sized for the largest row
/// range); under the optimized strategies both regions hold only `Q`.
pub fn region_layout(
    strategy: TransferStrategy,
    m: usize,
    n: usize,
    k: usize,
    max_assigned_rows: usize,
) -> RegionLayout {
    match strategy {
        TransferStrategy::FullPq => RegionLayout {
            pull_len: (m + n) * k,
            push_len: (max_assigned_rows + n) * k,
            pull_q_offset: m * k,
            push_q_offset: max_assigned_rows * k,
        },
        TransferStrategy::QOnly | TransferStrategy::HalfQ => RegionLayout {
            pull_len: n * k,
            push_len: n * k,
            pull_q_offset: 0,
            push_q_offset: 0,
        },
    }
}

/// Accumulates `acc += w·src` — the server's multiply-add merge step.
///
/// # Panics
/// Panics if lengths differ.
pub fn merge_weighted(acc: &mut [f32], src: &[f32], w: f32) {
    assert_eq!(acc.len(), src.len(), "merge length mismatch");
    for (a, &s) in acc.iter_mut().zip(src) {
        *a += w * s;
    }
}

/// In-place incremental merge used by the asynchronous path:
/// `global = (1−w)·global + w·src` per element.
///
/// # Panics
/// Panics if lengths differ.
pub fn merge_incremental(global: &mut [f32], src: &[f32], w: f32) {
    assert_eq!(global.len(), src.len(), "merge length mismatch");
    for (g, &s) in global.iter_mut().zip(src) {
        *g = (1.0 - w) * *g + w * s;
    }
}

/// Normalized merge weights from shard sizes (falls back to uniform when
/// every shard is empty).
pub fn merge_weights(shard_sizes: &[usize]) -> Vec<f32> {
    let total: usize = shard_sizes.iter().sum();
    if total == 0 {
        return vec![1.0 / shard_sizes.len().max(1) as f32; shard_sizes.len()];
    }
    shard_sizes
        .iter()
        .map(|&s| s as f32 / total as f32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_full_pq() {
        let l = region_layout(TransferStrategy::FullPq, 100, 20, 8, 40);
        assert_eq!(l.pull_len, 120 * 8);
        assert_eq!(l.pull_q_offset, 800);
        assert_eq!(l.push_len, 60 * 8);
        assert_eq!(l.push_q_offset, 320);
    }

    #[test]
    fn layout_q_only() {
        for s in [TransferStrategy::QOnly, TransferStrategy::HalfQ] {
            let l = region_layout(s, 100, 20, 8, 40);
            assert_eq!(l.pull_len, 160);
            assert_eq!(l.push_len, 160);
            assert_eq!(l.pull_q_offset, 0);
        }
    }

    #[test]
    fn weighted_merge_is_convex_combination() {
        let mut acc = vec![0.0f32; 3];
        merge_weighted(&mut acc, &[1.0, 2.0, 3.0], 0.25);
        merge_weighted(&mut acc, &[5.0, 6.0, 7.0], 0.75);
        assert_eq!(acc, vec![4.0, 5.0, 6.0]);
    }

    #[test]
    fn incremental_merge_moves_toward_src() {
        let mut g = vec![0.0f32, 10.0];
        merge_incremental(&mut g, &[10.0, 0.0], 0.5);
        assert_eq!(g, vec![5.0, 5.0]);
        merge_incremental(&mut g, &[5.0, 5.0], 1.0);
        assert_eq!(g, vec![5.0, 5.0]);
    }

    #[test]
    fn weights_normalize() {
        assert_eq!(merge_weights(&[10, 30]), vec![0.25, 0.75]);
        let uniform = merge_weights(&[0, 0, 0]);
        assert!((uniform.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn merge_length_mismatch_panics() {
        merge_weighted(&mut [0.0], &[1.0, 2.0], 1.0);
    }
}
