//! Training configuration.

use crate::error::HccError;
use hcc_comm::TransferStrategy;
use hcc_sgd::{LearningRate, Schedule};

/// One worker of the collaborative platform.
///
/// On this GPU-less substrate every worker is a thread pool; heterogeneity
/// comes from thread counts and the optional `speed_factor` throttle (used
/// by tests and benches to emulate slower processors deterministically).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerSpec {
    /// Display name.
    pub name: String,
    /// Hogwild threads inside this worker.
    pub threads: usize,
    /// Artificial speed multiplier in `(0, 1]`: after each compute chunk the
    /// worker sleeps `elapsed·(1−f)/f`, making its effective rate `f` of
    /// nominal. `1.0` = no throttle.
    pub speed_factor: f64,
    /// Treat this worker as a GPU for Algorithm 1's CPU/GPU group split
    /// (e.g. a "simulated GPU" worker with many threads).
    pub is_gpu: bool,
}

impl WorkerSpec {
    /// A CPU worker with `threads` threads.
    pub fn cpu(threads: usize) -> WorkerSpec {
        WorkerSpec {
            name: format!("cpu-{threads}t"),
            threads,
            speed_factor: 1.0,
            is_gpu: false,
        }
    }

    /// A "GPU-class" worker: a wide thread pool playing the CuMF_SGD role.
    pub fn gpu_sim(threads: usize) -> WorkerSpec {
        WorkerSpec {
            name: format!("gpu-sim-{threads}t"),
            threads,
            speed_factor: 1.0,
            is_gpu: true,
        }
    }

    /// Applies a throttle, returning the modified spec.
    pub fn throttled(mut self, speed_factor: f64) -> WorkerSpec {
        self.speed_factor = speed_factor;
        self
    }

    /// Renames the worker.
    pub fn named(mut self, name: &str) -> WorkerSpec {
        self.name = name.to_string();
        self
    }
}

/// How the server partitions data among workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionMode {
    /// Equal shares — the "unbalanced data" straw man of Fig. 3(a) when the
    /// platform is heterogeneous.
    Uniform,
    /// DP0 only: proportional to calibrated standalone speed (Eq. 6).
    Dp0,
    /// DP0 + Algorithm-1 compensation during the first epochs.
    Dp1,
    /// DP1 + hidden-synchronization staggering (Eq. 7).
    Dp2,
    /// The paper's λ dispatch (Eq. 5): DP1 when sync is negligible, else DP2.
    Auto,
}

/// Which COMM implementation carries the feature matrices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// Shared-memory single-copy buffers (the paper's COMM).
    Shared,
    /// Message-passing with serialize + staging copies (COMM-P / ps-lite).
    CommP,
    /// Framed socket RPC over a Unix domain socket: CRC-32-trailed frames,
    /// per-RPC deadlines, bounded retries with jittered backoff, and
    /// idempotent push dedup ([`hcc_comm::CommSocket`]).
    Socket,
    /// The same framed RPC stack over a loopback TCP listener — the
    /// multi-node wire ([`hcc_comm::CommSocket::new_tcp`]).
    Tcp,
}

/// Which per-update rule the workers run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Optimizer {
    /// Plain SGD at the configured learning-rate schedule (the paper).
    Sgd,
    /// AdaGrad-scaled steps (CuMF_SGD's alternative kernel). `eta0` is the
    /// base step; the learning-rate schedule is ignored. Accumulators are
    /// per-worker and reset when the partition is rebuilt.
    AdaGrad {
        /// Base step η₀.
        eta0: f32,
        /// Stabilizer ε.
        epsilon: f32,
    },
    /// Heavy-ball momentum at the configured learning-rate schedule.
    /// Velocity buffers are per-worker and reset on repartition.
    Momentum {
        /// Momentum coefficient β ∈ [0, 1).
        beta: f32,
    },
}

/// Early-stopping rule: stop when the best RMSE of the last `patience`
/// epochs fails to improve on the best before them by at least
/// `min_rel_improvement` (relative).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EarlyStop {
    /// Required relative improvement, e.g. `0.001` = 0.1 %.
    pub min_rel_improvement: f64,
    /// Epochs allowed without that improvement.
    pub patience: usize,
}

impl Default for EarlyStop {
    fn default() -> Self {
        EarlyStop {
            min_rel_improvement: 1e-3,
            patience: 3,
        }
    }
}

/// Full training configuration. Build with [`HccConfig::builder`].
#[derive(Debug, Clone, PartialEq)]
pub struct HccConfig {
    /// Latent dimension `k`.
    pub k: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Learning-rate schedule.
    pub learning_rate: LearningRate,
    /// L2 regularization λ1 (on `P`).
    pub lambda_p: f32,
    /// L2 regularization λ2 (on `Q`).
    pub lambda_q: f32,
    /// The worker set.
    pub workers: Vec<WorkerSpec>,
    /// Data-partition mode.
    pub partition: PartitionMode,
    /// Communication strategy (what travels each epoch).
    pub strategy: TransferStrategy,
    /// COMM implementation.
    pub transport: TransportKind,
    /// Parameter-server shards. `1` is the classic single endpoint; `N > 1`
    /// splits the synchronized region by contiguous row range across `N`
    /// shard endpoints (each of the configured [`TransportKind`]) with
    /// per-shard row-delta shipping. Requires the synchronous path
    /// (`streams == 1`) and a row-aligned region (`strategy != FullPq`).
    pub server_shards: usize,
    /// Pipeline streams for asynchronous computing–transmission (1 = off).
    pub streams: usize,
    /// Epochs at the start reserved for Algorithm-1 adaptation (partition
    /// may be revised after each of these).
    pub adapt_epochs: usize,
    /// Seed for initialization/shuffling.
    pub seed: u64,
    /// Record training RMSE after every epoch (extra pass).
    pub track_rmse: bool,
    /// Shuffle entries during preprocessing (step ① of Fig. 4).
    pub shuffle: bool,
    /// Optional early stopping (requires `track_rmse`).
    pub early_stop: Option<EarlyStop>,
    /// Per-update optimizer.
    pub optimizer: Optimizer,
    /// Hogwild entry-to-thread schedule inside each worker (plain SGD only;
    /// `stripe` is the classic interleaving, `tiled` the cache-blocked
    /// scheduler).
    pub schedule: Schedule,
    /// Optional warm-start factors `(P, Q)` in the *input* orientation.
    /// Dimensions must match the training matrix and `k`; used instead of
    /// random initialization (e.g. to resume from a checkpoint after new
    /// ratings arrive).
    pub warm_start: Option<(hcc_sgd::FactorMatrix, hcc_sgd::FactorMatrix)>,
    /// Enables the fault-tolerance layer (heartbeats, divergence rollback,
    /// survivor re-planning). `None` runs the original unsupervised loop.
    pub fault_tolerance: Option<crate::supervisor::SupervisorConfig>,
    /// Deterministic fault-injection script (requires `fault_tolerance`).
    pub fault_plan: Option<crate::fault::FaultPlan>,
    /// Seeded network chaos: wraps the transport in
    /// [`hcc_comm::ChaosTransport`], which drops/delays/duplicates/corrupts
    /// pushes (and optionally partitions a link) on a deterministic
    /// schedule. Requires `fault_tolerance` — the unsupervised loop's
    /// blocking collect would hang forever on a dropped push.
    pub net_chaos: Option<hcc_comm::NetChaosPlan>,
    /// Write a crash-safe v2 checkpoint every N epochs (requires
    /// `checkpoint_path`).
    pub checkpoint_every: Option<usize>,
    /// Where periodic checkpoints are written.
    pub checkpoint_path: Option<std::path::PathBuf>,
    /// Resume a previous run from this v2 checkpoint: factors, next epoch,
    /// and learning-rate backoff state are restored. Mutually exclusive
    /// with `warm_start`; the checkpoint's seed must match `seed`.
    pub resume: Option<std::path::PathBuf>,
    /// Record a telemetry timeline and write it as JSONL to this path when
    /// training finishes. `None` (the default) disables recording entirely;
    /// the instrumentation then costs one branch per call site.
    pub telemetry_path: Option<std::path::PathBuf>,
}

impl HccConfig {
    /// Starts a builder with the paper's defaults.
    pub fn builder() -> HccConfigBuilder {
        HccConfigBuilder::default()
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), HccError> {
        if self.k == 0 {
            return Err(HccError::BadConfig("k must be > 0".into()));
        }
        if self.epochs == 0 {
            return Err(HccError::BadConfig("epochs must be > 0".into()));
        }
        if self.workers.is_empty() {
            return Err(HccError::BadConfig("at least one worker required".into()));
        }
        if self.streams == 0 {
            return Err(HccError::BadConfig("streams must be >= 1".into()));
        }
        if self.server_shards == 0 {
            return Err(HccError::BadConfig("server_shards must be >= 1".into()));
        }
        if self.server_shards > 1 {
            if self.streams != 1 {
                return Err(HccError::BadConfig(
                    "sharded server supports only the synchronous path (streams = 1)".into(),
                ));
            }
            if self.strategy == TransferStrategy::FullPq {
                return Err(HccError::BadConfig(
                    "sharded server requires a row-aligned region \
                     (strategy QOnly or HalfQ, not FullPq)"
                        .into(),
                ));
            }
        }
        if self.early_stop.is_some() && !self.track_rmse {
            return Err(HccError::BadConfig(
                "early stopping requires track_rmse".into(),
            ));
        }
        if let Some(es) = &self.early_stop {
            if es.patience == 0 || !es.min_rel_improvement.is_finite() {
                return Err(HccError::BadConfig("invalid early-stop parameters".into()));
            }
        }
        if let Some((p, q)) = &self.warm_start {
            if p.k() != self.k || q.k() != self.k {
                return Err(HccError::BadConfig(format!(
                    "warm-start factors have k = {}/{}, config k = {}",
                    p.k(),
                    q.k(),
                    self.k
                )));
            }
        }
        if self.fault_plan.is_some() && self.fault_tolerance.is_none() {
            return Err(HccError::BadConfig(
                "fault_plan requires fault_tolerance".into(),
            ));
        }
        if self.net_chaos.is_some() && self.fault_tolerance.is_none() {
            return Err(HccError::BadConfig(
                "net_chaos requires fault_tolerance (the unsupervised collect \
                 would block forever on a dropped push)"
                    .into(),
            ));
        }
        if self.fault_tolerance.is_some() && self.streams != 1 {
            return Err(HccError::BadConfig(
                "fault tolerance supports only the synchronous path (streams = 1)".into(),
            ));
        }
        if self.checkpoint_every == Some(0) {
            return Err(HccError::BadConfig("checkpoint_every must be >= 1".into()));
        }
        if self.checkpoint_every.is_some() && self.checkpoint_path.is_none() {
            return Err(HccError::BadConfig(
                "checkpoint_every requires checkpoint_path".into(),
            ));
        }
        if self.resume.is_some() && self.warm_start.is_some() {
            return Err(HccError::BadConfig(
                "resume and warm_start are mutually exclusive".into(),
            ));
        }
        for w in &self.workers {
            if w.threads == 0 {
                return Err(HccError::BadConfig(format!(
                    "worker {} has zero threads",
                    w.name
                )));
            }
            if !(w.speed_factor > 0.0 && w.speed_factor <= 1.0) {
                return Err(HccError::BadConfig(format!(
                    "worker {} speed_factor {} outside (0, 1]",
                    w.name, w.speed_factor
                )));
            }
        }
        Ok(())
    }
}

/// Builder for [`HccConfig`].
#[derive(Debug, Clone)]
pub struct HccConfigBuilder {
    config: HccConfig,
}

impl Default for HccConfigBuilder {
    fn default() -> Self {
        HccConfigBuilder {
            config: HccConfig {
                k: 32,
                epochs: 20,
                learning_rate: LearningRate::paper_default(),
                lambda_p: 0.01,
                lambda_q: 0.01,
                workers: vec![WorkerSpec::cpu(2), WorkerSpec::cpu(2)],
                partition: PartitionMode::Auto,
                strategy: TransferStrategy::QOnly,
                transport: TransportKind::Shared,
                server_shards: 1,
                streams: 1,
                adapt_epochs: 3,
                seed: 0x5eed,
                track_rmse: false,
                shuffle: true,
                early_stop: None,
                optimizer: Optimizer::Sgd,
                schedule: Schedule::Stripe,
                warm_start: None,
                fault_tolerance: None,
                fault_plan: None,
                net_chaos: None,
                checkpoint_every: None,
                checkpoint_path: None,
                resume: None,
                telemetry_path: None,
            },
        }
    }
}

impl HccConfigBuilder {
    /// Latent dimension.
    pub fn k(mut self, k: usize) -> Self {
        self.config.k = k;
        self
    }

    /// Training epochs.
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.config.epochs = epochs;
        self
    }

    /// Learning-rate schedule.
    pub fn learning_rate(mut self, lr: LearningRate) -> Self {
        self.config.learning_rate = lr;
        self
    }

    /// Sets both λ1 and λ2.
    pub fn lambda(mut self, lambda: f32) -> Self {
        self.config.lambda_p = lambda;
        self.config.lambda_q = lambda;
        self
    }

    /// The worker set.
    pub fn workers(mut self, workers: Vec<WorkerSpec>) -> Self {
        self.config.workers = workers;
        self
    }

    /// Data-partition mode.
    pub fn partition(mut self, mode: PartitionMode) -> Self {
        self.config.partition = mode;
        self
    }

    /// Communication strategy.
    pub fn strategy(mut self, strategy: TransferStrategy) -> Self {
        self.config.strategy = strategy;
        self
    }

    /// COMM implementation.
    pub fn transport(mut self, transport: TransportKind) -> Self {
        self.config.transport = transport;
        self
    }

    /// Parameter-server shards (1 = single endpoint).
    pub fn server_shards(mut self, shards: usize) -> Self {
        self.config.server_shards = shards;
        self
    }

    /// Asynchronous pipeline streams (1 disables Strategy 3).
    pub fn streams(mut self, streams: usize) -> Self {
        self.config.streams = streams;
        self
    }

    /// Adaptation epochs for Algorithm 1.
    pub fn adapt_epochs(mut self, adapt_epochs: usize) -> Self {
        self.config.adapt_epochs = adapt_epochs;
        self
    }

    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Track per-epoch RMSE.
    pub fn track_rmse(mut self, track: bool) -> Self {
        self.config.track_rmse = track;
        self
    }

    /// Enable/disable the preprocessing shuffle.
    pub fn shuffle(mut self, shuffle: bool) -> Self {
        self.config.shuffle = shuffle;
        self
    }

    /// Enables early stopping (requires `track_rmse`).
    pub fn early_stop(mut self, rule: EarlyStop) -> Self {
        self.config.early_stop = Some(rule);
        self
    }

    /// Selects the per-update optimizer.
    pub fn optimizer(mut self, optimizer: Optimizer) -> Self {
        self.config.optimizer = optimizer;
        self
    }

    /// Selects the worker-internal Hogwild schedule.
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.config.schedule = schedule;
        self
    }

    /// Warm-starts training from existing factors (input orientation).
    pub fn warm_start(mut self, p: hcc_sgd::FactorMatrix, q: hcc_sgd::FactorMatrix) -> Self {
        self.config.warm_start = Some((p, q));
        self
    }

    /// Enables the fault-tolerance supervisor.
    pub fn fault_tolerance(mut self, cfg: crate::supervisor::SupervisorConfig) -> Self {
        self.config.fault_tolerance = Some(cfg);
        self
    }

    /// Installs a deterministic fault-injection plan (requires
    /// [`fault_tolerance`](Self::fault_tolerance)).
    pub fn fault_plan(mut self, plan: crate::fault::FaultPlan) -> Self {
        self.config.fault_plan = Some(plan);
        self
    }

    /// Enables seeded network chaos with the default hostile-network rates
    /// (the CLI's `--net-chaos SEED` recipe). Requires
    /// [`fault_tolerance`](Self::fault_tolerance).
    pub fn net_chaos(mut self, seed: u64) -> Self {
        self.config.net_chaos = Some(hcc_comm::NetChaosPlan::from_seed(seed));
        self
    }

    /// Installs an explicit network chaos plan (custom rates, partitions).
    pub fn net_chaos_plan(mut self, plan: hcc_comm::NetChaosPlan) -> Self {
        self.config.net_chaos = Some(plan);
        self
    }

    /// Writes a crash-safe checkpoint to `path` every `every` epochs.
    pub fn checkpoint(mut self, path: impl Into<std::path::PathBuf>, every: usize) -> Self {
        self.config.checkpoint_path = Some(path.into());
        self.config.checkpoint_every = Some(every);
        self
    }

    /// Resumes training from a v2 checkpoint file.
    pub fn resume(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.config.resume = Some(path.into());
        self
    }

    /// Records a telemetry timeline, written as JSONL to `path` at the end
    /// of training (also attached to the report as
    /// [`HccReport::timeline`](crate::report::HccReport::timeline)).
    pub fn telemetry(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.config.telemetry_path = Some(path.into());
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Panics
    /// Panics if the configuration is invalid — use
    /// [`try_build`](Self::try_build) for fallible construction.
    pub fn build(self) -> HccConfig {
        self.try_build().expect("invalid HccConfig")
    }

    /// Finalizes, returning an error on inconsistency.
    pub fn try_build(self) -> Result<HccConfig, HccError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = HccConfig::builder().build();
        assert_eq!(cfg.learning_rate, LearningRate::Constant(0.005));
        assert_eq!(cfg.strategy, TransferStrategy::QOnly);
        assert_eq!(cfg.partition, PartitionMode::Auto);
        assert_eq!(cfg.streams, 1);
        assert_eq!(cfg.schedule, Schedule::Stripe);
    }

    #[test]
    fn builder_sets_fields() {
        let cfg = HccConfig::builder()
            .k(64)
            .epochs(5)
            .lambda(0.5)
            .streams(3)
            .partition(PartitionMode::Dp2)
            .transport(TransportKind::CommP)
            .schedule(Schedule::Tiled)
            .build();
        assert_eq!(cfg.k, 64);
        assert_eq!(cfg.lambda_p, 0.5);
        assert_eq!(cfg.lambda_q, 0.5);
        assert_eq!(cfg.streams, 3);
        assert_eq!(cfg.transport, TransportKind::CommP);
        assert_eq!(cfg.schedule, Schedule::Tiled);
    }

    #[test]
    fn validation_catches_errors() {
        assert!(HccConfig::builder().k(0).try_build().is_err());
        assert!(HccConfig::builder().epochs(0).try_build().is_err());
        assert!(HccConfig::builder().workers(vec![]).try_build().is_err());
        assert!(HccConfig::builder().streams(0).try_build().is_err());
        assert!(HccConfig::builder().server_shards(0).try_build().is_err());
        assert!(HccConfig::builder()
            .workers(vec![WorkerSpec::cpu(0)])
            .try_build()
            .is_err());
        assert!(HccConfig::builder()
            .workers(vec![WorkerSpec::cpu(2).throttled(0.0)])
            .try_build()
            .is_err());
        assert!(HccConfig::builder()
            .workers(vec![WorkerSpec::cpu(2).throttled(1.5)])
            .try_build()
            .is_err());
    }

    #[test]
    fn validation_catches_fault_tolerance_misuse() {
        // Fault plan without supervision.
        assert!(HccConfig::builder()
            .fault_plan(crate::fault::FaultPlan::new(1))
            .try_build()
            .is_err());
        // Network chaos without supervision would hang the blocking collect.
        assert!(HccConfig::builder().net_chaos(7).try_build().is_err());
        assert!(HccConfig::builder()
            .net_chaos(7)
            .fault_tolerance(crate::supervisor::SupervisorConfig::default())
            .try_build()
            .is_ok());
        // An explicit plan goes through the same gate.
        assert!(HccConfig::builder()
            .net_chaos_plan(hcc_comm::NetChaosPlan::quiet(1).with_partition(0, 2))
            .try_build()
            .is_err());
        // Supervision only supports the synchronous path.
        assert!(HccConfig::builder()
            .fault_tolerance(crate::supervisor::SupervisorConfig::default())
            .streams(2)
            .try_build()
            .is_err());
        // Checkpointing needs a path and a positive interval.
        assert!(HccConfig::builder()
            .checkpoint("x.hccmf", 0)
            .try_build()
            .is_err());
        let mut cfg = HccConfig::builder().build();
        cfg.checkpoint_every = Some(2);
        assert!(cfg.validate().is_err());
        // Resume and warm start conflict.
        assert!(HccConfig::builder()
            .warm_start(
                hcc_sgd::FactorMatrix::zeros(2, 32),
                hcc_sgd::FactorMatrix::zeros(2, 32)
            )
            .resume("x.hccmf")
            .try_build()
            .is_err());
        // Valid combinations pass.
        assert!(HccConfig::builder()
            .fault_tolerance(crate::supervisor::SupervisorConfig::default())
            .fault_plan(crate::fault::FaultPlan::new(1).crash(0, 2))
            .checkpoint("x.hccmf", 2)
            .try_build()
            .is_ok());
    }

    #[test]
    fn validation_gates_sharded_server_combinations() {
        // Sharding needs the synchronous path…
        assert!(HccConfig::builder()
            .server_shards(2)
            .streams(2)
            .try_build()
            .is_err());
        // …and a row-aligned region (FullPq's pull/push layouts differ).
        assert!(HccConfig::builder()
            .server_shards(2)
            .strategy(TransferStrategy::FullPq)
            .try_build()
            .is_err());
        // QOnly/HalfQ shard fine, over any transport kind.
        for t in [
            TransportKind::Shared,
            TransportKind::CommP,
            TransportKind::Socket,
            TransportKind::Tcp,
        ] {
            assert!(HccConfig::builder()
                .server_shards(4)
                .transport(t)
                .try_build()
                .is_ok());
        }
    }

    #[test]
    fn worker_spec_helpers() {
        let w = WorkerSpec::gpu_sim(16).throttled(0.5).named("fake-2080");
        assert!(w.is_gpu);
        assert_eq!(w.threads, 16);
        assert_eq!(w.speed_factor, 0.5);
        assert_eq!(w.name, "fake-2080");
        assert!(!WorkerSpec::cpu(4).is_gpu);
    }
}
