//! # HCC-MF — heterogeneous collaborative computing for SGD-based MF
//!
//! A Rust reproduction of *"A Novel Multi-CPU/GPU Collaborative Computing
//! Framework for SGD-based Matrix Factorization"* (ICPP 2021). HCC-MF
//! trains the factor matrices `P`, `Q` of `R ≈ P·Q` with data-parallel
//! asynchronous SGD across heterogeneous workers coordinated by a parameter
//! server:
//!
//! ```text
//! pull → compute → push → sync      (repeated per epoch, Fig. 4)
//! ```
//!
//! * The **server** owns the global factor matrices, partitions the rating
//!   matrix into a row (or column) grid, and merges pushed results with a
//!   multiply-add per parameter (resolving WAW races between workers).
//! * Each **worker** is a thread pool (standing in for a CPU socket or — on
//!   this GPU-less substrate — a simulated GPU; see `hcc-hetsim` for the
//!   virtual-platform variant) running Hogwild SGD over its shard.
//! * **Data partition** follows the paper's DP0 → DP1 (Algorithm 1
//!   load-balance compensation) → DP2 (hidden synchronization) pipeline,
//!   driven by real measurements during the first epochs.
//! * **Communication** goes through the COMM layer (`hcc-comm`): shared
//!   single-copy buffers, "Transmit Q only", FP16 compression, and the
//!   asynchronous multi-stream pipeline of Strategy 3.
//!
//! ## Quickstart
//!
//! ```
//! use hcc_mf::{HccConfig, HccMf, WorkerSpec};
//! use hcc_sparse::{GenConfig, SyntheticDataset};
//!
//! let ds = SyntheticDataset::generate(GenConfig {
//!     rows: 300, cols: 200, nnz: 8_000, ..GenConfig::default()
//! });
//! let config = HccConfig::builder()
//!     .k(16)
//!     .epochs(5)
//!     .workers(vec![WorkerSpec::cpu(2), WorkerSpec::cpu(2)])
//!     .track_rmse(true)
//!     .build();
//! let report = HccMf::new(config).train(&ds.matrix).unwrap();
//! assert_eq!(report.rmse_history.len(), 5);
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod baseline;
pub mod checkpoint;
pub mod cli;
pub mod config;
pub mod error;
pub mod fault;
pub mod metrics;
pub mod observe;
pub mod report;
pub mod server;
pub mod serving;
pub mod supervisor;
pub mod train;
pub mod worker;

pub use baseline::{BaselinePredictor, BiasedRecommender};
pub use checkpoint::{
    load_checkpoint, load_model, save_checkpoint, save_model, ResumeState, TrainingMeta,
};
pub use config::{
    EarlyStop, HccConfig, HccConfigBuilder, Optimizer, PartitionMode, TransportKind, WorkerSpec,
};
pub use error::HccError;
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use metrics::{evaluate_ranking, RankingMetrics};
pub use report::{HccReport, WorkerEpochStats};
pub use server::{DeltaStats, ShardedServer};
pub use serving::{
    load_served_model, load_served_model_with, reload_from_checkpoint, reload_with_backoff,
};
pub use supervisor::{Supervisor, SupervisorConfig, WorkerHealth};
pub use train::HccMf;

// Re-export the pieces users compose with.
pub use hcc_comm::TransferStrategy;
pub use hcc_partition::StrategyChoice;
pub use hcc_serve::{FoldInConfig, Recommender, ServeEngine, ServeError, ServeStats, ServedModel};
pub use hcc_sgd::{FactorMatrix, LearningRate};
pub use hcc_telemetry::{Telemetry, Timeline};
