//! Command-line interface plumbing for the `hcc` binary.
//!
//! Parsing lives here (not in the binary) so it is unit-testable. Commands:
//!
//! ```text
//! hcc train <ratings.txt> [training flags]     train a model
//! hcc analyze <ratings.txt>                    dataset statistics + verdict
//! hcc recommend <model.hccmf> <ratings.txt> --user N [--count K]
//! hcc serve <model.hccmf> <ratings.txt> --queries FILE [serving flags]
//! ```

use crate::config::{HccConfig, PartitionMode, TransportKind, WorkerSpec};
use crate::metrics::evaluate_ranking;
use crate::train::HccMf;
use hcc_comm::TransferStrategy;
use hcc_serve::{
    AdmissionConfig, AdmissionPipeline, Precision, Recommender, ServeEngine, ServeError,
};
use hcc_sgd::{LearningRate, Schedule};
use hcc_sparse::stats::row_count_quantiles;
use hcc_sparse::MatrixStats;
use std::io::Write;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum CliCommand {
    /// Train on a triples file.
    Train(TrainArgs),
    /// Print dataset statistics and the §4.6 collaboration verdict.
    Analyze {
        /// Ratings file.
        path: String,
    },
    /// Serve top-k recommendations from a checkpoint.
    Recommend {
        /// Checkpoint path (written by `train --out`).
        model: String,
        /// Training ratings file (for seen-item exclusion).
        ratings: String,
        /// User to recommend for.
        user: u32,
        /// Recommendations to print.
        count: usize,
    },
    /// Run a scripted top-k query workload against a checkpoint.
    Serve(ServeArgs),
}

/// Arguments of the `serve` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Checkpoint path (written by `train --out`).
    pub model: String,
    /// Training ratings file (seen-item exclusion + shard weighting).
    pub ratings: String,
    /// Query workload file: one user id per line (`#` comments and blank
    /// lines skipped).
    pub queries: String,
    /// Recommendations per query.
    pub topk: usize,
    /// Item shards (threads a batch fans out across).
    pub shards: usize,
    /// Queries per batch.
    pub batch: usize,
    /// Item-shard storage precision (f32, fp16 or int8).
    pub precision: Precision,
    /// When set, route queries through the bounded async admission
    /// pipeline with this queue capacity (`--batch` caps the micro-batch);
    /// overload sheds instead of queueing without bound.
    pub admission_queue: Option<usize>,
    /// Write a JSONL telemetry timeline (one `query` span per query).
    pub telemetry: Option<String>,
}

/// Arguments of the `train` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainArgs {
    /// Ratings file.
    pub path: String,
    /// Latent dimension.
    pub k: usize,
    /// Epochs.
    pub epochs: usize,
    /// Learning rate γ.
    pub lr: f32,
    /// L2 regularization.
    pub lambda: f32,
    /// Worker spec string (`cpu2,gpu4,...`).
    pub workers: String,
    /// Communication strategy.
    pub strategy: TransferStrategy,
    /// Async pipeline streams.
    pub streams: usize,
    /// Held-out fraction.
    pub test_frac: f64,
    /// RNG seed.
    pub seed: u64,
    /// Partition mode.
    pub partition: PartitionMode,
    /// Hogwild schedule inside each worker.
    pub schedule: Schedule,
    /// Checkpoint path prefix.
    pub out: Option<String>,
    /// Evaluate ranking metrics on the held-out split.
    pub rank_metrics: bool,
    /// Write a crash-safe checkpoint every N epochs (to `--checkpoint-path`,
    /// or `<out>.ckpt.hccmf`).
    pub checkpoint_every: Option<usize>,
    /// Explicit path for periodic checkpoints.
    pub checkpoint_path: Option<String>,
    /// Resume a killed run from a v2 checkpoint.
    pub resume: Option<String>,
    /// Enable the fault-tolerance supervisor (heartbeats, divergence
    /// rollback, survivor re-planning).
    pub fault_tolerant: bool,
    /// Transport carrying pull/push traffic between server and workers.
    pub transport: TransportKind,
    /// Parameter-server shards (1 = single endpoint; N > 1 splits the
    /// synchronized region by contiguous row range with per-shard
    /// delta shipping).
    pub server_shards: usize,
    /// Seed for deterministic network chaos injection (drops, delays,
    /// duplicates, corruption). Implies `--fault-tolerant`.
    pub net_chaos: Option<u64>,
    /// Write a JSONL telemetry timeline here and print the epoch
    /// breakdown + cost-model validation after training.
    pub telemetry: Option<String>,
}

impl Default for TrainArgs {
    fn default() -> Self {
        TrainArgs {
            path: String::new(),
            k: 32,
            epochs: 20,
            lr: 0.005,
            lambda: 0.01,
            workers: "cpu2,cpu2".into(),
            strategy: TransferStrategy::QOnly,
            streams: 1,
            test_frac: 0.1,
            seed: 42,
            partition: PartitionMode::Auto,
            schedule: Schedule::Stripe,
            out: None,
            rank_metrics: false,
            checkpoint_every: None,
            checkpoint_path: None,
            resume: None,
            fault_tolerant: false,
            transport: TransportKind::Shared,
            server_shards: 1,
            net_chaos: None,
            telemetry: None,
        }
    }
}

/// Usage text shown on parse errors.
pub const USAGE: &str = "usage:
  hcc train <ratings.txt> [--k N] [--epochs N] [--lr F] [--lambda F]
            [--workers cpu2,gpu4[@0.5]] [--strategy pq|q|halfq] [--streams N]
            [--partition auto|uniform|dp0|dp1|dp2] [--schedule stripe|tiled]
            [--test-frac F] [--seed N] [--out PREFIX] [--rank-metrics]
            [--checkpoint-every N [--checkpoint-path FILE]] [--resume FILE]
            [--fault-tolerant] [--transport shared|commp|socket|tcp]
            [--server-shards N] [--net-chaos SEED] [--telemetry FILE.jsonl]
  hcc analyze <ratings.txt>
  hcc recommend <model.hccmf> <ratings.txt> --user N [--count K]
  hcc serve <model.hccmf> <ratings.txt> --queries FILE [--topk N]
            [--shards N] [--batch N] [--precision f32|fp16|int8]
            [--admission-queue N] [--telemetry FILE.jsonl]";

/// Parses raw arguments (excluding the program name).
pub fn parse(args: &[String]) -> Result<CliCommand, String> {
    let mut it = args.iter().peekable();
    let sub = it.next().ok_or("missing subcommand")?;
    match sub.as_str() {
        "train" => parse_train(&mut it).map(CliCommand::Train),
        "analyze" => {
            let path = it.next().ok_or("analyze needs a ratings file")?.clone();
            if it.next().is_some() {
                return Err("analyze takes exactly one argument".into());
            }
            Ok(CliCommand::Analyze { path })
        }
        "recommend" => {
            let model = it.next().ok_or("recommend needs a model file")?.clone();
            let ratings = it.next().ok_or("recommend needs a ratings file")?.clone();
            let mut user = None;
            let mut count = 10usize;
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--user" => {
                        user = Some(
                            it.next()
                                .ok_or("--user needs a value")?
                                .parse()
                                .map_err(|e| format!("--user: {e}"))?,
                        )
                    }
                    "--count" => {
                        count = it
                            .next()
                            .ok_or("--count needs a value")?
                            .parse()
                            .map_err(|e| format!("--count: {e}"))?
                    }
                    other => return Err(format!("unknown flag {other}")),
                }
            }
            Ok(CliCommand::Recommend {
                model,
                ratings,
                user: user.ok_or("recommend requires --user")?,
                count,
            })
        }
        "serve" => {
            let model = it.next().ok_or("serve needs a model file")?.clone();
            let ratings = it.next().ok_or("serve needs a ratings file")?.clone();
            let mut queries = None;
            let mut topk = 10usize;
            let mut shards = 4usize;
            let mut batch = 32usize;
            let mut precision = Precision::default();
            let mut admission_queue = None;
            let mut telemetry = None;
            while let Some(arg) = it.next() {
                let mut next = |name: &str| -> Result<String, String> {
                    it.next().cloned().ok_or(format!("{name} needs a value"))
                };
                match arg.as_str() {
                    "--queries" => queries = Some(next("--queries")?),
                    "--topk" => {
                        topk = next("--topk")?
                            .parse()
                            .map_err(|e| format!("--topk: {e}"))?
                    }
                    "--shards" => {
                        shards = next("--shards")?
                            .parse()
                            .map_err(|e| format!("--shards: {e}"))?
                    }
                    "--batch" => {
                        batch = next("--batch")?
                            .parse()
                            .map_err(|e| format!("--batch: {e}"))?
                    }
                    "--precision" => {
                        precision = next("--precision")?
                            .parse()
                            .map_err(|e| format!("--precision: {e}"))?
                    }
                    "--admission-queue" => {
                        admission_queue = Some(
                            next("--admission-queue")?
                                .parse()
                                .map_err(|e| format!("--admission-queue: {e}"))?,
                        )
                    }
                    "--telemetry" => telemetry = Some(next("--telemetry")?),
                    other => return Err(format!("unknown flag {other}")),
                }
            }
            if shards == 0 || batch == 0 {
                return Err("--shards and --batch must be >= 1".into());
            }
            if admission_queue == Some(0) {
                return Err("--admission-queue must be >= 1".into());
            }
            Ok(CliCommand::Serve(ServeArgs {
                model,
                ratings,
                queries: queries.ok_or("serve requires --queries")?,
                topk,
                shards,
                batch,
                precision,
                admission_queue,
                telemetry,
            }))
        }
        other => Err(format!("unknown subcommand {other}")),
    }
}

/// Parses a query workload file: one user id per line, blank lines and
/// `#`-prefixed comments skipped.
fn parse_query_file(text: &str) -> Result<Vec<u32>, String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| l.parse().map_err(|e| format!("query '{l}': {e}")))
        .collect()
}

fn parse_train<'a, I: Iterator<Item = &'a String>>(
    it: &mut std::iter::Peekable<I>,
) -> Result<TrainArgs, String> {
    let mut args = TrainArgs::default();
    let mut path = None;
    while let Some(arg) = it.next() {
        let mut next = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--k" => args.k = next("--k")?.parse().map_err(|e| format!("--k: {e}"))?,
            "--epochs" => {
                args.epochs = next("--epochs")?
                    .parse()
                    .map_err(|e| format!("--epochs: {e}"))?
            }
            "--lr" => args.lr = next("--lr")?.parse().map_err(|e| format!("--lr: {e}"))?,
            "--lambda" => {
                args.lambda = next("--lambda")?
                    .parse()
                    .map_err(|e| format!("--lambda: {e}"))?
            }
            "--workers" => args.workers = next("--workers")?,
            "--streams" => {
                args.streams = next("--streams")?
                    .parse()
                    .map_err(|e| format!("--streams: {e}"))?
            }
            "--test-frac" => {
                args.test_frac = next("--test-frac")?
                    .parse()
                    .map_err(|e| format!("--test-frac: {e}"))?
            }
            "--seed" => {
                args.seed = next("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--out" => args.out = Some(next("--out")?),
            "--rank-metrics" => args.rank_metrics = true,
            "--checkpoint-every" => {
                args.checkpoint_every = Some(
                    next("--checkpoint-every")?
                        .parse()
                        .map_err(|e| format!("--checkpoint-every: {e}"))?,
                )
            }
            "--checkpoint-path" => args.checkpoint_path = Some(next("--checkpoint-path")?),
            "--resume" => args.resume = Some(next("--resume")?),
            "--fault-tolerant" => args.fault_tolerant = true,
            "--transport" => {
                args.transport = match next("--transport")?.as_str() {
                    "shared" => TransportKind::Shared,
                    "commp" => TransportKind::CommP,
                    "socket" => TransportKind::Socket,
                    "tcp" => TransportKind::Tcp,
                    other => return Err(format!("unknown transport {other}")),
                }
            }
            "--server-shards" => {
                args.server_shards = next("--server-shards")?
                    .parse()
                    .map_err(|e| format!("--server-shards: {e}"))?;
                if args.server_shards == 0 {
                    return Err("--server-shards must be >= 1".into());
                }
            }
            "--net-chaos" => {
                args.net_chaos = Some(
                    next("--net-chaos")?
                        .parse()
                        .map_err(|e| format!("--net-chaos: {e}"))?,
                )
            }
            "--telemetry" => args.telemetry = Some(next("--telemetry")?),
            "--strategy" => {
                args.strategy = match next("--strategy")?.as_str() {
                    "pq" => TransferStrategy::FullPq,
                    "q" => TransferStrategy::QOnly,
                    "halfq" => TransferStrategy::HalfQ,
                    other => return Err(format!("unknown strategy {other}")),
                }
            }
            "--schedule" => args.schedule = next("--schedule")?.parse()?,
            "--partition" => {
                args.partition = match next("--partition")?.as_str() {
                    "auto" => PartitionMode::Auto,
                    "uniform" => PartitionMode::Uniform,
                    "dp0" => PartitionMode::Dp0,
                    "dp1" => PartitionMode::Dp1,
                    "dp2" => PartitionMode::Dp2,
                    other => return Err(format!("unknown partition mode {other}")),
                }
            }
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            other => path = Some(other.to_string()),
        }
    }
    args.path = path.ok_or("train needs a ratings file")?;
    Ok(args)
}

/// Parses `cpu2,gpu8,cpu4@0.5` — type + threads, optional `@speed`.
pub fn parse_workers(spec: &str) -> Result<Vec<WorkerSpec>, String> {
    spec.split(',')
        .map(|part| {
            let (body, speed) = match part.split_once('@') {
                Some((b, s)) => (
                    b,
                    s.parse::<f64>()
                        .map_err(|e| format!("speed in {part}: {e}"))?,
                ),
                None => (part, 1.0),
            };
            let (kind, threads) = if let Some(t) = body.strip_prefix("cpu") {
                ("cpu", t)
            } else if let Some(t) = body.strip_prefix("gpu") {
                ("gpu", t)
            } else {
                return Err(format!("worker {part} must start with cpu or gpu"));
            };
            let threads: usize = threads
                .parse()
                .map_err(|e| format!("threads in {part}: {e}"))?;
            let base = if kind == "gpu" {
                WorkerSpec::gpu_sim(threads)
            } else {
                WorkerSpec::cpu(threads)
            };
            Ok(base.throttled(speed))
        })
        .collect()
}

/// Executes a parsed command, writing human-readable output to `out`.
pub fn run(cmd: CliCommand, out: &mut dyn Write) -> Result<(), String> {
    match cmd {
        CliCommand::Analyze { path } => {
            let matrix = hcc_sparse::io::read_triples_file(&path).map_err(|e| e.to_string())?;
            let s = MatrixStats::compute(&matrix);
            writeln!(
                out,
                "{path}: {} × {} with {} ratings",
                s.rows, s.cols, s.nnz
            )
            .ok();
            writeln!(out, "density        {:.4}%", s.density * 100.0).ok();
            writeln!(out, "aspect (m/n)   {:.2}", s.aspect_ratio).ok();
            writeln!(out, "nnz/(m+n)      {:.1}", s.nnz_per_dim).ok();
            writeln!(out, "nnz/min(m,n)   {:.1}", s.nnz_per_min_dim).ok();
            writeln!(
                out,
                "rating mean/sd {:.3} / {:.3}",
                s.mean_rating, s.std_rating
            )
            .ok();
            writeln!(out, "row/col gini   {:.2} / {:.2}", s.row_gini, s.col_gini).ok();
            let (p50, p90, p99, max) = row_count_quantiles(&matrix);
            writeln!(
                out,
                "row counts     p50={p50} p90={p90} p99={p99} max={max}"
            )
            .ok();
            writeln!(
                out,
                "verdict        {} for multi-worker HCC-MF (threshold: nnz/min(m,n) >= 1000)",
                if s.collaboration_friendly() {
                    "GOOD"
                } else {
                    "POOR"
                }
            )
            .ok();
            Ok(())
        }
        CliCommand::Recommend {
            model,
            ratings,
            user,
            count,
        } => {
            let (p, q) = crate::checkpoint::load_model(&model).map_err(|e| e.to_string())?;
            let matrix = hcc_sparse::io::read_triples_file(&ratings).map_err(|e| e.to_string())?;
            if user as usize >= p.rows() {
                return Err(format!("user {user} out of range (model has {})", p.rows()));
            }
            let rec = Recommender::new(p, q, &matrix);
            for (item, score) in rec.top_k(user, count).map_err(|e| e.to_string())? {
                writeln!(out, "{item}\t{score:.3}").ok();
            }
            Ok(())
        }
        CliCommand::Serve(args) => {
            let matrix =
                hcc_sparse::io::read_triples_file(&args.ratings).map_err(|e| e.to_string())?;
            let model = crate::serving::load_served_model_with(
                &args.model,
                Some(&matrix),
                args.shards,
                args.precision,
            )
            .map_err(|e| e.to_string())?;
            let queries = parse_query_file(
                &std::fs::read_to_string(&args.queries)
                    .map_err(|e| format!("reading {}: {e}", args.queries))?,
            )?;
            if queries.is_empty() {
                return Err(format!("{} contains no queries", args.queries));
            }
            writeln!(
                out,
                "serving {} users × {} items (k={}, {}, shards {:?})",
                model.users(),
                model.items(),
                model.k(),
                model.precision(),
                model.shard_sizes()
            )
            .ok();
            let telemetry = if args.telemetry.is_some() {
                hcc_telemetry::Telemetry::enabled(
                    hcc_telemetry::Header {
                        workers: model.shard_count() as u32,
                        k: model.k() as u32,
                        nnz: matrix.nnz() as u64,
                        strategy: "serve".into(),
                        streams: 1,
                        backend: hcc_sgd::simd::active_backend().name().into(),
                        schedule: "serve".into(),
                    },
                    // One Query span per answered query, including the
                    // warm pass (up to `batch` extra answers).
                    (queries.len() + args.batch + 16).max(hcc_telemetry::DEFAULT_LANE_CAPACITY),
                )
            } else {
                hcc_telemetry::Telemetry::disabled()
            };
            let engine = std::sync::Arc::new(ServeEngine::with_telemetry(model, telemetry));

            // Warm pass: fault any lazy state (page cache, branch
            // predictors) on a prefix so the measured run is steady-state.
            let warm = queries.len().min(args.batch);
            engine
                .top_k_batch(&queries[..warm], args.topk)
                .map_err(|e| e.to_string())?;

            let t0 = std::time::Instant::now();
            let mut answered = 0usize;
            if let Some(capacity) = args.admission_queue {
                // Async path: submit everything through the bounded queue;
                // overload sheds (reported) rather than growing the queue.
                let pipeline = AdmissionPipeline::new(
                    std::sync::Arc::clone(&engine),
                    AdmissionConfig {
                        capacity,
                        max_batch: args.batch,
                    },
                );
                let mut tickets = Vec::with_capacity(queries.len());
                let mut shed = 0u64;
                for &user in &queries {
                    match pipeline.submit(user, args.topk) {
                        Ok(t) => tickets.push(t),
                        Err(ServeError::Overloaded { .. }) => shed += 1,
                        Err(e) => return Err(e.to_string()),
                    }
                }
                for t in tickets {
                    t.wait().map_err(|e| e.to_string())?;
                    answered += 1;
                }
                let a = pipeline.stats();
                drop(pipeline); // joins dispatcher + workers, releasing their Arcs
                writeln!(
                    out,
                    "admission: {} admitted, {} shed (queue capacity {capacity})",
                    a.admitted, shed
                )
                .ok();
            } else {
                for chunk in queries.chunks(args.batch) {
                    let results = engine
                        .top_k_batch(chunk, args.topk)
                        .map_err(|e| e.to_string())?;
                    answered += results.len();
                }
            }
            let wall = t0.elapsed();
            let stats = engine.stats();
            writeln!(
                out,
                "served {answered} queries (top-{}, batch {}) in {:.2?}",
                args.topk, args.batch, wall
            )
            .ok();
            writeln!(
                out,
                "latency p50 {} µs, p99 {} µs, p999 {} µs, {:.0} queries/s, scanned {:.1}% of items",
                stats.p50_us,
                stats.p99_us,
                stats.p999_us,
                answered as f64 / wall.as_secs_f64().max(1e-9),
                stats.scan_frac * 100.0
            )
            .ok();
            if let Some(path) = &args.telemetry {
                let engine = std::sync::Arc::try_unwrap(engine)
                    .map_err(|_| "serving engine still shared after pipeline shutdown")?;
                let timeline = engine
                    .finish_telemetry()
                    .ok_or("telemetry timeline missing despite --telemetry")?;
                std::fs::write(path, hcc_telemetry::jsonl::to_jsonl(&timeline))
                    .map_err(|e| format!("writing telemetry {path}: {e}"))?;
                writeln!(out, "telemetry timeline written to {path}").ok();
            }
            Ok(())
        }
        CliCommand::Train(args) => {
            let matrix =
                hcc_sparse::io::read_triples_file(&args.path).map_err(|e| e.to_string())?;
            writeln!(
                out,
                "loaded {}: {} × {}, {} ratings",
                args.path,
                matrix.rows(),
                matrix.cols(),
                matrix.nnz()
            )
            .ok();
            let (train, test) = if args.test_frac > 0.0 && args.test_frac < 1.0 && matrix.nnz() > 10
            {
                let (a, b) = hcc_sparse::train_test_split(&matrix, args.test_frac, args.seed)
                    .map_err(|e| e.to_string())?;
                (a, Some(b))
            } else {
                (matrix.clone(), None)
            };
            let mut builder = HccConfig::builder()
                .k(args.k)
                .epochs(args.epochs)
                .learning_rate(LearningRate::Constant(args.lr))
                .lambda(args.lambda)
                .workers(parse_workers(&args.workers)?)
                .strategy(args.strategy)
                .streams(args.streams)
                .partition(args.partition)
                .schedule(args.schedule)
                .seed(args.seed)
                .transport(args.transport)
                .server_shards(args.server_shards)
                .track_rmse(true);
            // Network chaos needs the supervisor's bounded collects, so
            // `--net-chaos` implies `--fault-tolerant`.
            if args.fault_tolerant || args.net_chaos.is_some() {
                builder = builder.fault_tolerance(crate::supervisor::SupervisorConfig::default());
            }
            if let Some(seed) = args.net_chaos {
                builder = builder.net_chaos(seed);
            }
            if let Some(path) = &args.telemetry {
                builder = builder.telemetry(path.clone());
            }
            if let Some(every) = args.checkpoint_every {
                let path = args
                    .checkpoint_path
                    .clone()
                    .or_else(|| args.out.as_ref().map(|p| format!("{p}.ckpt.hccmf")))
                    .ok_or("--checkpoint-every needs --checkpoint-path or --out")?;
                builder = builder.checkpoint(path, every);
            }
            if let Some(resume) = &args.resume {
                builder = builder.resume(resume.clone());
            }
            let config = builder.try_build().map_err(|e| e.to_string())?;
            let report = HccMf::new(config)
                .train(&train)
                .map_err(|e| e.to_string())?;
            if report.start_epoch > 0 {
                writeln!(
                    out,
                    "resumed from checkpoint at epoch {}",
                    report.start_epoch
                )
                .ok();
            }
            if report.rollbacks > 0 {
                writeln!(out, "divergence rollbacks: {}", report.rollbacks).ok();
            }
            writeln!(
                out,
                "trained {} epochs in {:.2?} ({:.1}M updates/s, strategy {:?}, wire {:.1} MiB)",
                report.epoch_times.len(),
                report.total_time(),
                report.computing_power() / 1e6,
                report.strategy_used,
                report.wire_bytes as f64 / (1024.0 * 1024.0)
            )
            .ok();
            let first_rmse = report.rmse_history.first().copied().unwrap_or(f64::NAN);
            let last_rmse = report.final_rmse().unwrap_or(f64::NAN);
            writeln!(out, "train RMSE {first_rmse:.4} -> {last_rmse:.4}").ok();
            if let Some(test) = &test {
                let rmse = hcc_sgd::rmse(test.entries(), &report.p, &report.q);
                writeln!(out, "held-out RMSE: {rmse:.4}").ok();
                if args.rank_metrics {
                    let rec = Recommender::new(report.p.clone(), report.q.clone(), &train);
                    let threshold = matrix.mean_rating() as f32;
                    let m = evaluate_ranking(&rec, test, 10, threshold);
                    writeln!(
                        out,
                        "ranking@10: precision {:.3}, recall {:.3}, NDCG {:.3} ({} users)",
                        m.precision, m.recall, m.ndcg, m.users_evaluated
                    )
                    .ok();
                }
            }
            if let Some(timeline) = &report.timeline {
                writeln!(out).ok();
                write!(out, "{}", crate::observe::epoch_summary(timeline)).ok();
                if let Some(v) = crate::observe::model_validation(&report) {
                    writeln!(out).ok();
                    write!(out, "{}", crate::observe::model_validation_text(&v)).ok();
                }
                writeln!(
                    out,
                    "telemetry timeline written to {}",
                    args.telemetry.as_deref().unwrap_or("?")
                )
                .ok();
            }
            if let Some(prefix) = &args.out {
                let path = format!("{prefix}.hccmf");
                crate::checkpoint::save_model(&path, &report.p, &report.q)
                    .map_err(|e| e.to_string())?;
                writeln!(out, "model written to {path}").ok();
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|t| t.to_string()).collect()
    }

    #[test]
    fn parse_train_defaults_and_flags() {
        let cmd = parse(&argv("train data.txt --k 64 --epochs 5 --strategy halfq --partition dp2 --schedule tiled --rank-metrics")).unwrap();
        match cmd {
            CliCommand::Train(args) => {
                assert_eq!(args.path, "data.txt");
                assert_eq!(args.k, 64);
                assert_eq!(args.epochs, 5);
                assert_eq!(args.strategy, TransferStrategy::HalfQ);
                assert_eq!(args.partition, PartitionMode::Dp2);
                assert_eq!(args.schedule, Schedule::Tiled);
                assert!(args.rank_metrics);
                assert_eq!(args.lr, 0.005); // default
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_fault_tolerance_flags() {
        let cmd = parse(&argv(
            "train data.txt --checkpoint-every 3 --checkpoint-path c.hccmf --resume r.hccmf --fault-tolerant",
        ))
        .unwrap();
        match cmd {
            CliCommand::Train(args) => {
                assert_eq!(args.checkpoint_every, Some(3));
                assert_eq!(args.checkpoint_path.as_deref(), Some("c.hccmf"));
                assert_eq!(args.resume.as_deref(), Some("r.hccmf"));
                assert!(args.fault_tolerant);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("train d.txt --checkpoint-every zero")).is_err());
    }

    #[test]
    fn parse_transport_and_net_chaos_flags() {
        let cmd = parse(&argv("train data.txt --transport socket --net-chaos 7")).unwrap();
        match cmd {
            CliCommand::Train(args) => {
                assert_eq!(args.transport, TransportKind::Socket);
                assert_eq!(args.net_chaos, Some(7));
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv("train data.txt")).unwrap() {
            CliCommand::Train(args) => {
                assert_eq!(args.transport, TransportKind::Shared);
                assert_eq!(args.net_chaos, None);
                assert_eq!(args.server_shards, 1);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("train d.txt --transport carrier-pigeon")).is_err());
        assert!(parse(&argv("train d.txt --net-chaos nope")).is_err());
    }

    #[test]
    fn parse_sharded_server_flags() {
        let cmd = parse(&argv("train data.txt --transport tcp --server-shards 4")).unwrap();
        match cmd {
            CliCommand::Train(args) => {
                assert_eq!(args.transport, TransportKind::Tcp);
                assert_eq!(args.server_shards, 4);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("train d.txt --server-shards 0")).is_err());
        assert!(parse(&argv("train d.txt --server-shards many")).is_err());
    }

    #[test]
    fn parse_telemetry_flag() {
        let cmd = parse(&argv("train data.txt --telemetry run.jsonl")).unwrap();
        match cmd {
            CliCommand::Train(args) => assert_eq!(args.telemetry.as_deref(), Some("run.jsonl")),
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("train d.txt --telemetry")).is_err());
    }

    #[test]
    fn train_with_telemetry_prints_breakdown_and_writes_jsonl() {
        use hcc_sparse::{GenConfig, SyntheticDataset};
        let dir = std::env::temp_dir().join("hcc_cli_telemetry_test");
        std::fs::create_dir_all(&dir).unwrap();
        let ratings = dir.join("r.txt");
        let ds = SyntheticDataset::generate(GenConfig {
            rows: 120,
            cols: 60,
            nnz: 2_500,
            ..GenConfig::default()
        });
        hcc_sparse::io::write_triples_file(&ds.matrix, &ratings).unwrap();
        let ratings = ratings.to_string_lossy().into_owned();
        let jsonl = dir.join("run.jsonl").to_string_lossy().into_owned();

        let mut buf = Vec::new();
        let cmd = parse(
            &format!("train {ratings} --k 8 --epochs 4 --telemetry {jsonl}")
                .split_whitespace()
                .map(|s| s.to_string())
                .collect::<Vec<_>>(),
        )
        .unwrap();
        run(cmd, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("epoch breakdown"), "{text}");
        assert!(text.contains("cost-model validation"), "{text}");
        assert!(text.contains("telemetry timeline written"), "{text}");

        let raw = std::fs::read_to_string(&jsonl).unwrap();
        let timeline = hcc_telemetry::jsonl::parse(&raw).unwrap();
        assert_eq!(timeline.header.workers, 2);
        assert!(!timeline.events.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_analyze_and_recommend() {
        assert_eq!(
            parse(&argv("analyze r.txt")).unwrap(),
            CliCommand::Analyze {
                path: "r.txt".into()
            }
        );
        assert_eq!(
            parse(&argv("recommend m.hccmf r.txt --user 7 --count 3")).unwrap(),
            CliCommand::Recommend {
                model: "m.hccmf".into(),
                ratings: "r.txt".into(),
                user: 7,
                count: 3
            }
        );
    }

    #[test]
    fn parse_errors() {
        assert!(parse(&[]).is_err());
        assert!(parse(&argv("frobnicate x")).is_err());
        assert!(parse(&argv("train")).is_err());
        assert!(parse(&argv("train d.txt --bogus 3")).is_err());
        assert!(parse(&argv("train d.txt --k notanumber")).is_err());
        assert!(parse(&argv("train d.txt --schedule diagonal")).is_err());
        assert!(parse(&argv("recommend m.hccmf r.txt")).is_err()); // no --user
        assert!(parse(&argv("analyze a.txt extra")).is_err());
    }

    #[test]
    fn parse_serve_defaults_and_flags() {
        let cmd = parse(&argv(
            "serve m.hccmf r.txt --queries q.txt --topk 5 --shards 8 --batch 64 \
             --precision int8 --admission-queue 512 --telemetry t.jsonl",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            CliCommand::Serve(ServeArgs {
                model: "m.hccmf".into(),
                ratings: "r.txt".into(),
                queries: "q.txt".into(),
                topk: 5,
                shards: 8,
                batch: 64,
                precision: Precision::Int8,
                admission_queue: Some(512),
                telemetry: Some("t.jsonl".into()),
            })
        );
        match parse(&argv("serve m.hccmf r.txt --queries q.txt")).unwrap() {
            CliCommand::Serve(args) => {
                assert_eq!((args.topk, args.shards, args.batch), (10, 4, 32));
                assert_eq!(args.precision, Precision::F32);
                assert_eq!(args.admission_queue, None);
                assert_eq!(args.telemetry, None);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("serve m.hccmf r.txt")).is_err()); // no --queries
        assert!(parse(&argv("serve m.hccmf r.txt --queries q.txt --shards 0")).is_err());
        assert!(parse(&argv("serve m.hccmf r.txt --queries q.txt --batch 0")).is_err());
        assert!(parse(&argv("serve m.hccmf r.txt --queries q.txt --precision f64")).is_err());
        assert!(parse(&argv(
            "serve m.hccmf r.txt --queries q.txt --admission-queue 0"
        ))
        .is_err());
        assert!(parse(&argv("serve m.hccmf r.txt --queries q.txt --bogus")).is_err());
    }

    #[test]
    fn query_file_parsing_skips_comments() {
        assert_eq!(
            parse_query_file("# workload\n3\n\n 7 \n0\n").unwrap(),
            vec![3, 7, 0]
        );
        assert!(parse_query_file("3\nnope\n").is_err());
    }

    #[test]
    fn serve_runs_a_scripted_workload_from_a_checkpoint() {
        use hcc_sgd::FactorMatrix;
        use hcc_sparse::{GenConfig, SyntheticDataset};
        let dir = std::env::temp_dir().join("hcc_cli_serve_test");
        std::fs::create_dir_all(&dir).unwrap();
        let ds = SyntheticDataset::generate(GenConfig {
            rows: 80,
            cols: 50,
            nnz: 1_200,
            ..GenConfig::default()
        });
        let ratings = dir.join("r.txt");
        hcc_sparse::io::write_triples_file(&ds.matrix, &ratings).unwrap();
        let model = dir.join("m.hccmf");
        crate::checkpoint::save_model(
            &model,
            &FactorMatrix::random(80, 8, 1),
            &FactorMatrix::random(50, 8, 2),
        )
        .unwrap();
        let queries = dir.join("q.txt");
        std::fs::write(&queries, "# workload\n0\n17\n42\n5\n").unwrap();
        let jsonl = dir.join("serve.jsonl");

        let mut buf = Vec::new();
        let cmd = parse(&argv(&format!(
            "serve {} {} --queries {} --topk 3 --shards 2 --batch 2 --telemetry {}",
            model.display(),
            ratings.display(),
            queries.display(),
            jsonl.display()
        )))
        .unwrap();
        run(cmd, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("served 4 queries"), "{text}");
        assert!(text.contains("latency p50"), "{text}");

        // The timeline holds one `query` span per answered query (warm pass
        // included) under the serving header.
        let timeline =
            hcc_telemetry::jsonl::parse(&std::fs::read_to_string(&jsonl).unwrap()).unwrap();
        assert_eq!(timeline.header.strategy, "serve");
        assert_eq!(timeline.header.workers, 2);
        let spans = timeline
            .events
            .iter()
            .filter(|e| {
                matches!(e, hcc_telemetry::Event::Phase { phase, .. }
                    if *phase == hcc_telemetry::Phase::Query)
            })
            .count();
        assert_eq!(spans, 6, "4 measured + 2 warm");

        // The same workload through the quantized async path: answers flow
        // through the admission pipeline and the summary reports it.
        let mut buf = Vec::new();
        let cmd = parse(&argv(&format!(
            "serve {} {} --queries {} --topk 3 --shards 2 --precision fp16 --admission-queue 16",
            model.display(),
            ratings.display(),
            queries.display()
        )))
        .unwrap();
        run(cmd, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("fp16"), "{text}");
        assert!(text.contains("admission: 4 admitted, 0 shed"), "{text}");
        assert!(text.contains("served 4 queries"), "{text}");

        // An out-of-range user in the workload is a clean error.
        std::fs::write(&queries, "9999\n").unwrap();
        let cmd = parse(&argv(&format!(
            "serve {} {} --queries {}",
            model.display(),
            ratings.display(),
            queries.display()
        )))
        .unwrap();
        assert!(run(cmd, &mut Vec::new()).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_workers_specs() {
        let w = parse_workers("cpu2,gpu8,cpu4@0.5").unwrap();
        assert_eq!(w.len(), 3);
        assert!(!w[0].is_gpu);
        assert!(w[1].is_gpu);
        assert_eq!(w[1].threads, 8);
        assert_eq!(w[2].speed_factor, 0.5);
        assert!(parse_workers("tpu3").is_err());
        assert!(parse_workers("cpu").is_err());
        assert!(parse_workers("cpu2@fast").is_err());
    }

    #[test]
    fn end_to_end_train_analyze_recommend() {
        use hcc_sparse::{GenConfig, SyntheticDataset};
        let dir = std::env::temp_dir().join("hcc_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let ratings = dir.join("r.txt");
        let ds = SyntheticDataset::generate(GenConfig {
            rows: 120,
            cols: 60,
            nnz: 2_500,
            ..GenConfig::default()
        });
        hcc_sparse::io::write_triples_file(&ds.matrix, &ratings).unwrap();
        let ratings = ratings.to_string_lossy().into_owned();
        let model_prefix = dir.join("model").to_string_lossy().into_owned();

        // analyze
        let mut buf = Vec::new();
        run(
            CliCommand::Analyze {
                path: ratings.clone(),
            },
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("verdict"), "{text}");

        // train with checkpoint + ranking metrics
        let mut buf = Vec::new();
        let cmd = parse(
            &format!(
                "train {ratings} --k 8 --epochs 8 --lr 0.02 --out {model_prefix} --rank-metrics"
            )
            .split_whitespace()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
        )
        .unwrap();
        run(cmd, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("held-out RMSE"), "{text}");
        assert!(text.contains("ranking@10"), "{text}");
        assert!(text.contains("model written"), "{text}");

        // recommend from the checkpoint
        let mut buf = Vec::new();
        run(
            CliCommand::Recommend {
                model: format!("{model_prefix}.hccmf"),
                ratings: ratings.clone(),
                user: 50,
                count: 4,
            },
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 4, "{text}");

        // out-of-range user errors cleanly
        let err = run(
            CliCommand::Recommend {
                model: format!("{model_prefix}.hccmf"),
                ratings,
                user: 10_000,
                count: 4,
            },
            &mut Vec::new(),
        );
        assert!(err.is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
