//! Factor-matrix checkpointing.
//!
//! Two on-disk formats, both little-endian:
//!
//! **v1** (legacy, read-only compat):
//!
//! ```text
//! magic "HCCMF1\n"  |  u64 m  u64 n  u64 k  |  P (m·k f32 LE)  |  Q (n·k f32 LE)
//! ```
//!
//! **v2** (crash-safe, written by [`save_model`] / [`save_checkpoint`]):
//!
//! ```text
//! magic "HCCMF2\n"
//! u64 m   u64 n   u64 k   u64 epoch   u64 seed
//! f32 lr_scale
//! u8  flags            (bit 0: matrix was transposed before training)
//! P (m·k f32 LE)
//! Q (n·k f32 LE)
//! u32 crc32            (CRC-32/IEEE over every preceding byte)
//! ```
//!
//! v2 files are written to `<path>.tmp`, fsynced, then atomically renamed
//! over `path`, so a crash mid-write can never leave a loadable-but-torn
//! file at `path`. Loading validates the exact file length implied by the
//! header *before* allocating (an absurd-dimension header is rejected
//! instead of attempting a huge allocation) and then the CRC footer, which
//! catches truncation and every single-bit flip.

use crate::error::HccError;
use hcc_sgd::FactorMatrix;
use std::io::Write;
use std::path::Path;

const MAGIC_V1: &[u8; 7] = b"HCCMF1\n";
const MAGIC_V2: &[u8; 7] = b"HCCMF2\n";

/// Header flag bit: the input matrix was transposed (m < n) before training.
const FLAG_TRANSPOSED: u8 = 1;

/// v2 bytes between magic and P: 5×u64 + f32 lr_scale + u8 flags.
const V2_META_LEN: usize = 5 * 8 + 4 + 1;

/// Training-loop state stored alongside the factors in a v2 checkpoint so a
/// killed run can resume mid-training.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingMeta {
    /// Next epoch to run (epochs `0..epoch` are already reflected in P/Q).
    pub epoch: usize,
    /// RNG seed the run was started with (resume validates it matches).
    pub seed: u64,
    /// Cumulative learning-rate backoff applied by the divergence guard.
    pub lr_scale: f32,
    /// Whether the input matrix was transposed before training.
    pub transposed: bool,
}

impl Default for TrainingMeta {
    fn default() -> Self {
        TrainingMeta {
            epoch: 0,
            seed: 0,
            lr_scale: 1.0,
            transposed: false,
        }
    }
}

/// A fully-loaded v2 checkpoint: factors plus resumable training state.
#[derive(Debug, Clone, PartialEq)]
pub struct ResumeState {
    pub p: FactorMatrix,
    pub q: FactorMatrix,
    pub meta: TrainingMeta,
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, the zlib polynomial). The implementation lives in
// `hcc_comm::frame` — the checkpoint footer and the network frame trailer
// are byte-for-byte the same checksum — and is re-exported here so
// existing `checkpoint::crc32` callers keep working.
// ---------------------------------------------------------------------------

pub use hcc_comm::frame::crc32;

// ---------------------------------------------------------------------------
// Save
// ---------------------------------------------------------------------------

/// Writes a `(P, Q)` model to `path` in the crash-safe v2 format with
/// default (fresh-run) training metadata.
pub fn save_model<P: AsRef<Path>>(
    path: P,
    p: &FactorMatrix,
    q: &FactorMatrix,
) -> Result<(), HccError> {
    save_checkpoint(path, p, q, &TrainingMeta::default())
}

/// Writes a `(P, Q)` model plus resumable training state to `path`.
///
/// The file is assembled in memory (CRC needs the full byte stream), written
/// to `<path>.tmp`, fsynced, and atomically renamed into place.
pub fn save_checkpoint<P: AsRef<Path>>(
    path: P,
    p: &FactorMatrix,
    q: &FactorMatrix,
    meta: &TrainingMeta,
) -> Result<(), HccError> {
    if p.k() != q.k() {
        return Err(HccError::BadInput(
            "P and Q must share latent dimension".into(),
        ));
    }
    let path = path.as_ref();
    let mut bytes = Vec::with_capacity(
        MAGIC_V2.len() + V2_META_LEN + 4 * (p.as_slice().len() + q.as_slice().len()) + 4,
    );
    bytes.extend_from_slice(MAGIC_V2);
    for v in [
        p.rows() as u64,
        q.rows() as u64,
        p.k() as u64,
        meta.epoch as u64,
        meta.seed,
    ] {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    bytes.extend_from_slice(&meta.lr_scale.to_le_bytes());
    bytes.push(if meta.transposed { FLAG_TRANSPOSED } else { 0 });
    for &v in p.as_slice() {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    for &v in q.as_slice() {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    let crc = crc32(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());

    let tmp = path.with_extension(match path.extension() {
        Some(ext) => format!("{}.tmp", ext.to_string_lossy()),
        None => "tmp".to_string(),
    });
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(&bytes)?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, path)?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Load
// ---------------------------------------------------------------------------

/// Reads a `(P, Q)` model from `path`; accepts both v1 and v2 files.
///
/// Always returns factors in the *original* input orientation (P over
/// users, Q over items): a mid-training checkpoint of a wide matrix
/// stores them in the trainer's internal transposed orientation with the
/// `transposed` flag set, and this un-swaps them. Resume-path callers
/// that need the internal orientation use [`load_checkpoint`] directly.
pub fn load_model<P: AsRef<Path>>(path: P) -> Result<(FactorMatrix, FactorMatrix), HccError> {
    let state = load_checkpoint(path)?;
    if state.meta.transposed {
        Ok((state.q, state.p))
    } else {
        Ok((state.p, state.q))
    }
}

/// Reads a checkpoint with its training metadata. v1 files load with
/// [`TrainingMeta::default`] (they carry no resume state).
pub fn load_checkpoint<P: AsRef<Path>>(path: P) -> Result<ResumeState, HccError> {
    let bytes = std::fs::read(path.as_ref())?;
    if bytes.len() >= MAGIC_V2.len() && &bytes[..7] == MAGIC_V2 {
        load_v2(&bytes)
    } else if bytes.len() >= MAGIC_V1.len() && &bytes[..7] == MAGIC_V1 {
        load_v1(&bytes)
    } else {
        Err(HccError::CorruptCheckpoint(
            "unrecognized magic (not an HCCMF checkpoint)".into(),
        ))
    }
}

fn read_u64(bytes: &[u8], off: usize) -> u64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&bytes[off..off + 8]);
    u64::from_le_bytes(buf)
}

/// Rejects headers whose dimensions can't correspond to a real file: the
/// payload length they imply must match the actual byte count exactly, so
/// a bit-flipped dimension can never trigger a huge allocation.
fn checked_dims(
    m: u64,
    n: u64,
    k: u64,
    payload_len: usize,
) -> Result<(usize, usize, usize), HccError> {
    let (m, n, k) = (m as usize, n as usize, k as usize);
    let expected = (|| {
        if k == 0 {
            return None;
        }
        let pk = m.checked_mul(k)?;
        let qk = n.checked_mul(k)?;
        pk.checked_add(qk)?.checked_mul(4)
    })();
    match expected {
        Some(len) if len == payload_len => Ok((m, n, k)),
        _ => Err(HccError::CorruptCheckpoint(format!(
            "header dims ({m}×{n}×{k}) inconsistent with payload of {payload_len} bytes"
        ))),
    }
}

fn decode_f32s(bytes: &[u8]) -> Vec<f32> {
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

fn load_v2(bytes: &[u8]) -> Result<ResumeState, HccError> {
    let header_len = MAGIC_V2.len() + V2_META_LEN;
    if bytes.len() < header_len + 4 {
        return Err(HccError::CorruptCheckpoint("truncated v2 header".into()));
    }
    let (body, footer) = bytes.split_at(bytes.len() - 4);
    let stored_crc = u32::from_le_bytes([footer[0], footer[1], footer[2], footer[3]]);
    let actual_crc = crc32(body);
    if stored_crc != actual_crc {
        return Err(HccError::CorruptCheckpoint(format!(
            "crc mismatch (stored {stored_crc:#010x}, computed {actual_crc:#010x})"
        )));
    }
    let mut off = MAGIC_V2.len();
    let m = read_u64(body, off);
    let n = read_u64(body, off + 8);
    let k = read_u64(body, off + 16);
    let epoch = read_u64(body, off + 24);
    let seed = read_u64(body, off + 32);
    off += 40;
    let lr_scale = f32::from_le_bytes([body[off], body[off + 1], body[off + 2], body[off + 3]]);
    let flags = body[off + 4];
    let payload = &body[header_len..];
    let (m, n, k) = checked_dims(m, n, k, payload.len())?;
    if !(lr_scale.is_finite() && lr_scale > 0.0) {
        return Err(HccError::CorruptCheckpoint(format!(
            "invalid lr_scale {lr_scale}"
        )));
    }
    let (p_bytes, q_bytes) = payload.split_at(m * k * 4);
    Ok(ResumeState {
        p: FactorMatrix::from_vec(m, k, decode_f32s(p_bytes)),
        q: FactorMatrix::from_vec(n, k, decode_f32s(q_bytes)),
        meta: TrainingMeta {
            epoch: epoch as usize,
            seed,
            lr_scale,
            transposed: flags & FLAG_TRANSPOSED != 0,
        },
    })
}

fn load_v1(bytes: &[u8]) -> Result<ResumeState, HccError> {
    let header_len = MAGIC_V1.len() + 3 * 8;
    if bytes.len() < header_len {
        return Err(HccError::CorruptCheckpoint("truncated v1 header".into()));
    }
    let m = read_u64(bytes, MAGIC_V1.len());
    let n = read_u64(bytes, MAGIC_V1.len() + 8);
    let k = read_u64(bytes, MAGIC_V1.len() + 16);
    let payload = &bytes[header_len..];
    let (m, n, k) = checked_dims(m, n, k, payload.len())?;
    let (p_bytes, q_bytes) = payload.split_at(m * k * 4);
    Ok(ResumeState {
        p: FactorMatrix::from_vec(m, k, decode_f32s(p_bytes)),
        q: FactorMatrix::from_vec(n, k, decode_f32s(q_bytes)),
        meta: TrainingMeta::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("hcc_checkpoint_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    /// Builds a v1-format file by hand (the writer only emits v2 now).
    fn write_v1(path: &std::path::Path, p: &FactorMatrix, q: &FactorMatrix) {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC_V1);
        for v in [p.rows() as u64, q.rows() as u64, p.k() as u64] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        for &v in p.as_slice().iter().chain(q.as_slice()) {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        std::fs::write(path, bytes).unwrap();
    }

    #[test]
    fn roundtrip() {
        let p = FactorMatrix::random(13, 4, 1);
        let q = FactorMatrix::random(7, 4, 2);
        let path = tmp("roundtrip.hccmf");
        save_model(&path, &p, &q).unwrap();
        let (p2, q2) = load_model(&path).unwrap();
        assert_eq!(p, p2);
        assert_eq!(q, q2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn roundtrip_with_meta() {
        let p = FactorMatrix::random(6, 3, 5);
        let q = FactorMatrix::random(9, 3, 6);
        let meta = TrainingMeta {
            epoch: 7,
            seed: 42,
            lr_scale: 0.25,
            transposed: true,
        };
        let path = tmp("meta.hccmf");
        save_checkpoint(&path, &p, &q, &meta).unwrap();
        let state = load_checkpoint(&path).unwrap();
        assert_eq!(state.p, p);
        assert_eq!(state.q, q);
        assert_eq!(state.meta, meta);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_model_unswaps_transposed_checkpoints() {
        // A wide input (items > users) trains transposed, so its periodic
        // checkpoints store (P_int=items, Q_int=users) with the flag set.
        // `load_model` must hand back the original (users, items)
        // orientation; `load_checkpoint` keeps the internal one for resume.
        let p_int = FactorMatrix::random(9, 3, 15); // items, internally "P"
        let q_int = FactorMatrix::random(6, 3, 16); // users, internally "Q"
        let meta = TrainingMeta {
            epoch: 3,
            seed: 1,
            lr_scale: 1.0,
            transposed: true,
        };
        let path = tmp("transposed.hccmf");
        save_checkpoint(&path, &p_int, &q_int, &meta).unwrap();
        let (p, q) = load_model(&path).unwrap();
        assert_eq!(p, q_int, "P must be the user factors");
        assert_eq!(q, p_int, "Q must be the item factors");
        let state = load_checkpoint(&path).unwrap();
        assert_eq!(state.p, p_int);
        assert_eq!(state.q, q_int);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn reads_legacy_v1_files() {
        let p = FactorMatrix::random(5, 2, 7);
        let q = FactorMatrix::random(4, 2, 8);
        let path = tmp("legacy_v1.hccmf");
        write_v1(&path, &p, &q);
        let state = load_checkpoint(&path).unwrap();
        assert_eq!(state.p, p);
        assert_eq!(state.q, q);
        assert_eq!(state.meta, TrainingMeta::default());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_mismatched_k() {
        let p = FactorMatrix::zeros(2, 3);
        let q = FactorMatrix::zeros(2, 4);
        assert!(save_model(tmp("bad_k.hccmf"), &p, &q).is_err());
    }

    #[test]
    fn rejects_garbage_file() {
        let path = tmp("garbage.hccmf");
        std::fs::write(&path, b"definitely not a checkpoint").unwrap();
        assert!(matches!(
            load_model(&path),
            Err(HccError::CorruptCheckpoint(_))
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_truncated_file() {
        let p = FactorMatrix::random(5, 2, 3);
        let q = FactorMatrix::random(4, 2, 4);
        let path = tmp("trunc.hccmf");
        save_model(&path, &p, &q).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        assert!(matches!(
            load_model(&path),
            Err(HccError::CorruptCheckpoint(_))
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_single_bit_flip_anywhere() {
        let p = FactorMatrix::random(3, 2, 9);
        let q = FactorMatrix::random(2, 2, 10);
        let path = tmp("bitflip.hccmf");
        save_model(&path, &p, &q).unwrap();
        let clean = std::fs::read(&path).unwrap();
        for byte_idx in 0..clean.len() {
            let mut corrupt = clean.clone();
            corrupt[byte_idx] ^= 1 << (byte_idx % 8);
            std::fs::write(&path, &corrupt).unwrap();
            assert!(
                load_model(&path).is_err(),
                "bit flip at byte {byte_idx} went undetected"
            );
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_absurd_dims_without_allocating() {
        let p = FactorMatrix::random(3, 2, 11);
        let q = FactorMatrix::random(2, 2, 12);
        let path = tmp("absurd.hccmf");
        write_v1(&path, &p, &q);
        let mut bytes = std::fs::read(&path).unwrap();
        // Claim m = 2^60 rows in a v1 file (no CRC to catch it): the length
        // check must reject it before any allocation happens.
        bytes[MAGIC_V1.len()..MAGIC_V1.len() + 8].copy_from_slice(&(1u64 << 60).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_model(&path),
            Err(HccError::CorruptCheckpoint(_))
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn atomic_write_leaves_no_tmp_file() {
        let p = FactorMatrix::random(4, 2, 13);
        let q = FactorMatrix::random(4, 2, 14);
        let path = tmp("atomic.hccmf");
        save_model(&path, &p, &q).unwrap();
        assert!(path.exists());
        assert!(!tmp("atomic.hccmf.tmp").exists());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_errors() {
        assert!(matches!(
            load_model(tmp("does_not_exist.hccmf")),
            Err(HccError::Io(_))
        ));
    }

    #[test]
    fn crc32_known_vector() {
        // Standard check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
