//! Factor-matrix checkpointing.
//!
//! A compact binary format for trained models so long runs can be saved and
//! recommenders served without retraining:
//!
//! ```text
//! magic "HCCMF1\n"  |  u64 m  u64 n  u64 k  |  P (m·k f32 LE)  |  Q (n·k f32 LE)
//! ```

use crate::error::HccError;
use hcc_sgd::FactorMatrix;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 7] = b"HCCMF1\n";

/// Writes a `(P, Q)` model to `path`.
pub fn save_model<P: AsRef<Path>>(
    path: P,
    p: &FactorMatrix,
    q: &FactorMatrix,
) -> Result<(), HccError> {
    if p.k() != q.k() {
        return Err(HccError::BadInput(
            "P and Q must share latent dimension".into(),
        ));
    }
    let file = std::fs::File::create(path).map_err(io_err)?;
    let mut out = BufWriter::new(file);
    out.write_all(MAGIC).map_err(io_err)?;
    for dim in [p.rows() as u64, q.rows() as u64, p.k() as u64] {
        out.write_all(&dim.to_le_bytes()).map_err(io_err)?;
    }
    write_f32s(&mut out, p.as_slice())?;
    write_f32s(&mut out, q.as_slice())?;
    out.flush().map_err(io_err)
}

/// Reads a `(P, Q)` model from `path`.
pub fn load_model<P: AsRef<Path>>(path: P) -> Result<(FactorMatrix, FactorMatrix), HccError> {
    let file = std::fs::File::open(path).map_err(io_err)?;
    let mut input = BufReader::new(file);
    let mut magic = [0u8; 7];
    input.read_exact(&mut magic).map_err(io_err)?;
    if &magic != MAGIC {
        return Err(HccError::BadInput("not an HCCMF1 checkpoint".into()));
    }
    let mut dims = [0u64; 3];
    for d in dims.iter_mut() {
        let mut buf = [0u8; 8];
        input.read_exact(&mut buf).map_err(io_err)?;
        *d = u64::from_le_bytes(buf);
    }
    let (m, n, k) = (dims[0] as usize, dims[1] as usize, dims[2] as usize);
    if k == 0 || m.checked_mul(k).is_none() || n.checked_mul(k).is_none() {
        return Err(HccError::BadInput("corrupt checkpoint header".into()));
    }
    let p = FactorMatrix::from_vec(m, k, read_f32s(&mut input, m * k)?);
    let q = FactorMatrix::from_vec(n, k, read_f32s(&mut input, n * k)?);
    Ok((p, q))
}

fn write_f32s<W: Write>(out: &mut W, data: &[f32]) -> Result<(), HccError> {
    // Chunked conversion to LE bytes; avoids one giant temporary.
    let mut buf = Vec::with_capacity(4096 * 4);
    for chunk in data.chunks(4096) {
        buf.clear();
        for &v in chunk {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        out.write_all(&buf).map_err(io_err)?;
    }
    Ok(())
}

fn read_f32s<R: Read>(input: &mut R, count: usize) -> Result<Vec<f32>, HccError> {
    let mut bytes = vec![0u8; count * 4];
    input.read_exact(&mut bytes).map_err(io_err)?;
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

fn io_err(err: std::io::Error) -> HccError {
    HccError::BadInput(format!("checkpoint io: {err}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("hcc_checkpoint_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip() {
        let p = FactorMatrix::random(13, 4, 1);
        let q = FactorMatrix::random(7, 4, 2);
        let path = tmp("roundtrip.hccmf");
        save_model(&path, &p, &q).unwrap();
        let (p2, q2) = load_model(&path).unwrap();
        assert_eq!(p, p2);
        assert_eq!(q, q2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_mismatched_k() {
        let p = FactorMatrix::zeros(2, 3);
        let q = FactorMatrix::zeros(2, 4);
        assert!(save_model(tmp("bad_k.hccmf"), &p, &q).is_err());
    }

    #[test]
    fn rejects_garbage_file() {
        let path = tmp("garbage.hccmf");
        std::fs::write(&path, b"definitely not a checkpoint").unwrap();
        assert!(load_model(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_truncated_file() {
        let p = FactorMatrix::random(5, 2, 3);
        let q = FactorMatrix::random(4, 2, 4);
        let path = tmp("trunc.hccmf");
        save_model(&path, &p, &q).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        assert!(load_model(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_errors() {
        assert!(load_model(tmp("does_not_exist.hccmf")).is_err());
    }
}
