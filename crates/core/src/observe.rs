//! Human-readable views over a recorded telemetry timeline: the per-epoch
//! phase breakdown and the measured-vs-model validation report.
//!
//! The numeric analysis lives in [`hcc_telemetry::summary`]; this module
//! formats it against an [`HccReport`] (which supplies the partition each
//! epoch actually ran with) into the text the CLI prints and
//! `results/model_validation.txt` archives.

use crate::report::HccReport;
use hcc_telemetry::{epoch_breakdown, validate_cost_model, ModelValidation, Timeline};

/// Renders the epoch summary: per-worker phase totals for each recorded
/// epoch plus wall-clock coverage (how much of the measured epoch wall time
/// the recorded `t_pull + t_comp + t_push + t_sync` spans account for).
pub fn epoch_summary(timeline: &Timeline) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "epoch breakdown ({} workers, k = {}, strategy {}, backend {}, schedule {})\n",
        timeline.header.workers,
        timeline.header.k,
        timeline.header.strategy,
        timeline.header.backend,
        timeline.header.schedule,
    ));
    out.push_str(
        "epoch | worker |  pull ms |  comp ms |  push ms |  sync ms |  sum ms | wall-clock coverage\n",
    );
    for b in epoch_breakdown(timeline) {
        for (w, t) in b.workers.iter().enumerate() {
            let coverage = if b.wall > 0.0 {
                format!("{:5.1}%", 100.0 * t.total() / b.wall)
            } else {
                "    — ".into()
            };
            out.push_str(&format!(
                "{:5} | {:6} | {:8.2} | {:8.2} | {:8.2} | {:8.2} | {:7.2} | {coverage}\n",
                b.epoch,
                w,
                t.pull * 1e3,
                t.comp * 1e3,
                t.push * 1e3,
                t.sync * 1e3,
                t.total() * 1e3,
            ));
        }
        if b.pull_bytes + b.push_bytes > 0 {
            out.push_str(&format!(
                "{:5} | wire: {} B pulled, {} B pushed\n",
                b.epoch, b.pull_bytes, b.push_bytes
            ));
        }
    }
    if timeline.dropped > 0 {
        out.push_str(&format!(
            "warning: {} events dropped (ring buffers full)\n",
            timeline.dropped
        ));
    }
    out
}

/// Runs the Eq. 2 cost-model validation for a finished training run,
/// pairing the timeline with the partitions each accepted epoch used.
/// `None` when the report has no timeline or too few epochs to score.
pub fn model_validation(report: &HccReport) -> Option<ModelValidation> {
    let timeline = report.timeline.as_ref()?;
    validate_cost_model(timeline, &report.partition_history)
}

/// Formats a [`ModelValidation`] as the measured-vs-model report.
pub fn model_validation_text(v: &ModelValidation) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "cost-model validation: B_i calibrated on the first warm epoch, \
         {} later epoch(s) predicted from partition fractions\n",
        v.epochs_scored
    ));
    out.push_str("worker |     B_i (MB/s) | measured t_comp | predicted t_comp | rel err\n");
    for r in &v.rows {
        out.push_str(&format!(
            "{:6} | {:14.1} | {:13.2} ms | {:14.2} ms | {:6.1}%\n",
            r.worker,
            r.bandwidth / 1e6,
            r.measured_comp * 1e3,
            r.predicted_comp * 1e3,
            r.rel_error * 100.0,
        ));
    }
    out.push_str(&format!(
        "mean error {:.1}%, worst {:.1}%\n",
        v.mean_error * 100.0,
        v.worst_error * 100.0
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_telemetry::{Dir, Event, Header, Phase};

    fn timeline() -> Timeline {
        Timeline {
            header: Header {
                workers: 2,
                k: 8,
                nnz: 1000,
                strategy: "q-only".into(),
                streams: 1,
                backend: "scalar".into(),
                schedule: "stripe".into(),
            },
            events: vec![
                Event::Phase {
                    epoch: 0,
                    worker: 0,
                    phase: Phase::Comp,
                    start_us: 0,
                    dur_us: 9_000,
                },
                Event::Phase {
                    epoch: 0,
                    worker: 1,
                    phase: Phase::Comp,
                    start_us: 0,
                    dur_us: 9_000,
                },
                Event::Phase {
                    epoch: 0,
                    worker: 0,
                    phase: Phase::Sync,
                    start_us: 9_100,
                    dur_us: 400,
                },
                Event::Bytes {
                    epoch: 0,
                    dir: Dir::Pull,
                    bytes: 123,
                },
                Event::EpochEnd {
                    epoch: 0,
                    wall_us: 10_000,
                },
                Event::Phase {
                    epoch: 1,
                    worker: 0,
                    phase: Phase::Comp,
                    start_us: 11_000,
                    dur_us: 9_000,
                },
                Event::Phase {
                    epoch: 1,
                    worker: 1,
                    phase: Phase::Comp,
                    start_us: 11_000,
                    dur_us: 9_000,
                },
            ],
            dropped: 0,
        }
    }

    #[test]
    fn epoch_summary_lists_workers_and_coverage() {
        let text = epoch_summary(&timeline());
        assert!(text.contains("epoch breakdown (2 workers"));
        // Worker 0, epoch 0: 9.4 ms of a 10 ms wall = 94%.
        assert!(text.contains("94.0%"), "{text}");
        assert!(text.contains("wire: 123 B pulled"));
    }

    #[test]
    fn validation_text_reports_errors() {
        let t = timeline();
        let v = validate_cost_model(&t, &[vec![0.5, 0.5], vec![0.5, 0.5]]).unwrap();
        let text = model_validation_text(&v);
        assert!(text.contains("cost-model validation"));
        assert!(text.contains("mean error 0.0%"), "{text}");
    }
}
