//! Deterministic fault injection for the training engine.
//!
//! A [`FaultPlan`] is a seeded script of failures — "worker 2 crashes at
//! epoch 3", "worker 0's push buffer is corrupted at epoch 1" — that the
//! supervised epoch loop consults at fixed points. Nothing in the plan
//! depends on wall-clock time, so a given (plan, config, seed) triple
//! exercises exactly the same recovery path on every run, which is what
//! makes the chaos tests reproducible in CI.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// What goes wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker dies at the start of the epoch: it computes nothing and
    /// never pushes. Its heartbeat stops, so the supervisor marks it dead
    /// and re-plans the partition over the survivors.
    Crash,
    /// The worker sleeps this many milliseconds before computing, modelling
    /// a transient slowdown (thermal throttle, noisy neighbour). It still
    /// finishes the epoch; the supervisor may classify it as a straggler.
    Stall { millis: u64 },
    /// The worker's push buffer is poisoned with NaNs before transmission.
    /// The server's integrity check must discard the shard rather than
    /// merge garbage into Q.
    CorruptPush,
    /// The push message is dropped in transit: the worker computes but the
    /// server never receives its shard and times out waiting.
    DropPush,
}

/// One scripted failure: `worker` suffers `kind` during `epoch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    pub worker: usize,
    pub epoch: usize,
    pub kind: FaultKind,
}

/// A seeded script of [`FaultEvent`]s.
///
/// The seed drives any randomness *inside* a fault (e.g. which positions of
/// a corrupted buffer are poisoned); the schedule itself is fully explicit.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    pub seed: u64,
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// Schedules `worker` to crash at the start of `epoch`.
    pub fn crash(mut self, worker: usize, epoch: usize) -> Self {
        self.events.push(FaultEvent {
            worker,
            epoch,
            kind: FaultKind::Crash,
        });
        self
    }

    /// Schedules `worker` to stall for `millis` ms during `epoch`.
    pub fn stall(mut self, worker: usize, epoch: usize, millis: u64) -> Self {
        self.events.push(FaultEvent {
            worker,
            epoch,
            kind: FaultKind::Stall { millis },
        });
        self
    }

    /// Schedules `worker`'s push buffer to be NaN-poisoned during `epoch`.
    pub fn corrupt_push(mut self, worker: usize, epoch: usize) -> Self {
        self.events.push(FaultEvent {
            worker,
            epoch,
            kind: FaultKind::CorruptPush,
        });
        self
    }

    /// Schedules `worker`'s push message to be dropped during `epoch`.
    pub fn drop_push(mut self, worker: usize, epoch: usize) -> Self {
        self.events.push(FaultEvent {
            worker,
            epoch,
            kind: FaultKind::DropPush,
        });
        self
    }

    /// The fault scheduled for `worker` at `epoch`, if any. `worker` indexes
    /// the *original* worker list (the id a worker was created with), so a
    /// plan keeps addressing the same machine after survivors are re-packed.
    pub fn at(&self, worker: usize, epoch: usize) -> Option<FaultKind> {
        self.events
            .iter()
            .find(|e| e.worker == worker && e.epoch == epoch)
            .map(|e| e.kind)
    }

    /// True if any event is scheduled at `epoch`.
    pub fn has_events_at(&self, epoch: usize) -> bool {
        self.events.iter().any(|e| e.epoch == epoch)
    }

    /// Deterministic positions to poison in a corrupted buffer of `len`
    /// elements: seeded by (plan seed, worker, epoch) so the same plan
    /// corrupts the same cells every run. Returns ~1% of positions, at
    /// least one.
    pub fn corrupt_positions(&self, worker: usize, epoch: usize, len: usize) -> Vec<usize> {
        if len == 0 {
            return Vec::new();
        }
        let stream = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((worker as u64) << 32)
            .wrapping_add(epoch as u64);
        let mut rng = ChaCha8Rng::seed_from_u64(stream);
        let count = (len / 100).max(1);
        (0..count).map(|_| rng.random_range(0..len)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let plan = FaultPlan::new(7)
            .crash(1, 3)
            .stall(0, 2, 50)
            .corrupt_push(2, 4)
            .drop_push(3, 1);
        assert_eq!(plan.at(1, 3), Some(FaultKind::Crash));
        assert_eq!(plan.at(0, 2), Some(FaultKind::Stall { millis: 50 }));
        assert_eq!(plan.at(2, 4), Some(FaultKind::CorruptPush));
        assert_eq!(plan.at(3, 1), Some(FaultKind::DropPush));
        assert_eq!(plan.at(1, 2), None);
        assert!(plan.has_events_at(3));
        assert!(!plan.has_events_at(0));
    }

    #[test]
    fn corrupt_positions_are_deterministic_and_in_bounds() {
        let plan = FaultPlan::new(42).corrupt_push(0, 1);
        let a = plan.corrupt_positions(0, 1, 1000);
        let b = plan.corrupt_positions(0, 1, 1000);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.iter().all(|&i| i < 1000));
        // Different (worker, epoch) streams differ.
        let c = plan.corrupt_positions(1, 1, 1000);
        assert_ne!(a, c);
    }

    #[test]
    fn corrupt_positions_handle_tiny_buffers() {
        let plan = FaultPlan::new(1);
        assert_eq!(plan.corrupt_positions(0, 0, 0), Vec::<usize>::new());
        let one = plan.corrupt_positions(0, 0, 1);
        assert_eq!(one, vec![0]);
    }
}
