//! Ranking metrics for trained recommenders.
//!
//! RMSE (what the paper's Fig. 7 reports) measures rating reconstruction;
//! a deployed recommender is judged on ranking. This module evaluates a
//! `Recommender` against a held-out test set with the
//! standard top-k metrics: precision@k, recall@k and NDCG@k.

use hcc_serve::Recommender;
use hcc_sparse::{CooMatrix, CsrMatrix};

/// Aggregated ranking metrics over all evaluable test users.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankingMetrics {
    /// Mean precision@k.
    pub precision: f64,
    /// Mean recall@k.
    pub recall: f64,
    /// Mean NDCG@k (binary relevance).
    pub ndcg: f64,
    /// Users with at least one relevant test item (the averaging base).
    pub users_evaluated: usize,
    /// The cut-off used.
    pub k: usize,
}

/// Evaluates top-k recommendations against `test`. An item is *relevant*
/// for a user when its held-out rating is `>= relevance_threshold`. Users
/// with no relevant test items are skipped.
///
/// # Panics
/// Panics if `k == 0` or the test matrix dimensions disagree with the
/// recommender's.
pub fn evaluate_ranking(
    rec: &Recommender,
    test: &CooMatrix,
    k: usize,
    relevance_threshold: f32,
) -> RankingMetrics {
    assert!(k > 0, "cut-off k must be non-zero");
    assert_eq!(test.rows() as usize, rec.users(), "user count mismatch");
    assert_eq!(test.cols() as usize, rec.items(), "item count mismatch");

    let test_csr = CsrMatrix::from(test);
    let mut precision_sum = 0.0;
    let mut recall_sum = 0.0;
    let mut ndcg_sum = 0.0;
    let mut users = 0usize;

    for u in 0..test.rows() {
        let (items, ratings) = test_csr.row(u);
        let mut relevant: Vec<u32> = items
            .iter()
            .zip(ratings)
            .filter(|&(_, &r)| r >= relevance_threshold)
            .map(|(&i, _)| i)
            .collect();
        if relevant.is_empty() {
            continue;
        }
        relevant.sort_unstable();
        users += 1;

        let top = rec
            .top_k(u, k)
            .expect("u ranges over test rows, asserted == rec.users()");
        let hits: Vec<bool> = top
            .iter()
            .map(|(i, _)| relevant.binary_search(i).is_ok())
            .collect();
        let hit_count = hits.iter().filter(|&&h| h).count();

        precision_sum += hit_count as f64 / k as f64;
        recall_sum += hit_count as f64 / relevant.len() as f64;

        // Binary-relevance NDCG: DCG = Σ hit_j / log2(j+2); ideal DCG uses
        // min(k, |relevant|) leading hits.
        let dcg: f64 = hits
            .iter()
            .enumerate()
            .filter(|(_, &h)| h)
            .map(|(j, _)| 1.0 / ((j as f64 + 2.0).log2()))
            .sum();
        let ideal: f64 = (0..relevant.len().min(k))
            .map(|j| 1.0 / ((j as f64 + 2.0).log2()))
            .sum();
        ndcg_sum += if ideal > 0.0 { dcg / ideal } else { 0.0 };
    }

    let base = users.max(1) as f64;
    RankingMetrics {
        precision: precision_sum / base,
        recall: recall_sum / base,
        ndcg: ndcg_sum / base,
        users_evaluated: users,
        k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_sgd::FactorMatrix;
    use hcc_sparse::Rating;

    /// Build a 2-user, 4-item recommender with k=1 factors whose scores
    /// rank items 3 > 2 > 1 > 0 for both users.
    fn fixture() -> (Recommender, CooMatrix) {
        let p = FactorMatrix::from_vec(2, 1, vec![1.0, 1.0]);
        let q = FactorMatrix::from_vec(4, 1, vec![0.1, 0.2, 0.3, 0.4]);
        // Neither user has seen anything during training.
        let train = CooMatrix::new(2, 4, vec![]).unwrap();
        let rec = Recommender::new(p, q, &train);
        // Test: user 0 loves items 3 and 0; user 1 loves item 1 only.
        let test = CooMatrix::new(
            2,
            4,
            vec![
                Rating::new(0, 3, 5.0),
                Rating::new(0, 0, 5.0),
                Rating::new(1, 1, 5.0),
                Rating::new(1, 2, 1.0), // below threshold: irrelevant
            ],
        )
        .unwrap();
        (rec, test)
    }

    #[test]
    fn metrics_hand_computed() {
        let (rec, test) = fixture();
        let m = evaluate_ranking(&rec, &test, 2, 4.0);
        assert_eq!(m.users_evaluated, 2);
        // User 0: top-2 = {3, 2}; relevant {3, 0} → P = 1/2, R = 1/2.
        // User 1: top-2 = {3, 2}; relevant {1}   → P = 0,   R = 0.
        assert!((m.precision - 0.25).abs() < 1e-12, "{m:?}");
        assert!((m.recall - 0.25).abs() < 1e-12, "{m:?}");
        // User 0 NDCG: hit at rank 0 → DCG = 1/log2(2) = 1; ideal (2 rel,
        // k=2) = 1 + 1/log2(3) ≈ 1.6309 → 0.6131. User 1: 0.
        assert!((m.ndcg - 0.6131 / 2.0).abs() < 1e-3, "{m:?}");
    }

    #[test]
    fn perfect_recommender_scores_one() {
        let p = FactorMatrix::from_vec(1, 1, vec![1.0]);
        let q = FactorMatrix::from_vec(3, 1, vec![3.0, 2.0, 1.0]);
        let train = CooMatrix::new(1, 3, vec![]).unwrap();
        let rec = Recommender::new(p, q, &train);
        let test =
            CooMatrix::new(1, 3, vec![Rating::new(0, 0, 5.0), Rating::new(0, 1, 5.0)]).unwrap();
        let m = evaluate_ranking(&rec, &test, 2, 4.0);
        assert!((m.precision - 1.0).abs() < 1e-12);
        assert!((m.recall - 1.0).abs() < 1e-12);
        assert!((m.ndcg - 1.0).abs() < 1e-12);
    }

    #[test]
    fn users_without_relevant_items_are_skipped() {
        let (rec, _) = fixture();
        let test = CooMatrix::new(2, 4, vec![Rating::new(0, 1, 1.0)]).unwrap();
        let m = evaluate_ranking(&rec, &test, 2, 4.0);
        assert_eq!(m.users_evaluated, 0);
        assert_eq!(m.precision, 0.0);
    }

    #[test]
    #[should_panic(expected = "cut-off")]
    fn zero_k_panics() {
        let (rec, test) = fixture();
        evaluate_ranking(&rec, &test, 0, 4.0);
    }

    #[test]
    fn trained_model_beats_random_on_ranking() {
        use crate::{HccConfig, HccMf, WorkerSpec};
        use hcc_sparse::{train_test_split, GenConfig, SyntheticDataset};
        let ds = SyntheticDataset::generate(GenConfig {
            rows: 200,
            cols: 100,
            nnz: 8_000,
            noise: 0.0,
            ..GenConfig::default()
        });
        let (train, test) = train_test_split(&ds.matrix, 0.2, 1).unwrap();
        let threshold = (ds.matrix.mean_rating() + 0.5) as f32;

        let cfg = HccConfig::builder()
            .k(8)
            .epochs(20)
            .learning_rate(hcc_sgd::LearningRate::Constant(0.02))
            .workers(vec![WorkerSpec::cpu(2)])
            .build();
        let report = HccMf::new(cfg).train(&train).unwrap();
        let trained = Recommender::new(report.p, report.q, &train);
        let trained_m = evaluate_ranking(&trained, &test, 10, threshold);

        let random = Recommender::new(
            FactorMatrix::random(200, 8, 99),
            FactorMatrix::random(100, 8, 100),
            &train,
        );
        let random_m = evaluate_ranking(&random, &test, 10, threshold);
        assert!(
            trained_m.ndcg > random_m.ndcg * 1.3,
            "trained {:?} vs random {:?}",
            trained_m,
            random_m
        );
    }
}
