//! Training report: everything the evaluation section measures.

use hcc_partition::StrategyChoice;
use hcc_sgd::FactorMatrix;
use std::time::Duration;

/// Per-worker, per-epoch phase timings (the Fig. 8 raw data).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WorkerEpochStats {
    /// Time spent pulling the feature matrix.
    pub pull: Duration,
    /// Time spent computing SGD updates.
    pub compute: Duration,
    /// Time spent pushing results.
    pub push: Duration,
    /// SGD updates performed this epoch.
    pub updates: u64,
}

impl WorkerEpochStats {
    /// pull + compute + push.
    pub fn total(&self) -> Duration {
        self.pull + self.compute + self.push
    }
}

/// The result of an HCC-MF training run.
#[derive(Debug, Clone)]
pub struct HccReport {
    /// Final user factors (`m × k`, original orientation).
    pub p: FactorMatrix,
    /// Final item factors (`n × k`).
    pub q: FactorMatrix,
    /// Per-epoch training RMSE (empty unless tracking was enabled).
    pub rmse_history: Vec<f64>,
    /// Per-epoch wall-clock time (includes pull/compute/push/sync).
    pub epoch_times: Vec<Duration>,
    /// `stats[epoch][worker]` phase timings.
    pub worker_stats: Vec<Vec<WorkerEpochStats>>,
    /// Per-epoch server synchronization time.
    pub sync_times: Vec<Duration>,
    /// The partition in force during each epoch.
    pub partition_history: Vec<Vec<f64>>,
    /// Which partition strategy the run settled on.
    pub strategy_used: StrategyChoice,
    /// Total SGD updates across all workers and epochs.
    pub total_updates: u64,
    /// Bytes that crossed the COMM wire.
    pub wire_bytes: u64,
    /// True if the input was transposed internally (column grid: `n > m`).
    pub transposed: bool,
    /// `health_history[epoch][worker]` classification (empty unless the
    /// fault-tolerance supervisor was enabled). Worker indices follow the
    /// fleet as of that epoch — the list shrinks when dead workers are
    /// removed.
    pub health_history: Vec<Vec<crate::supervisor::WorkerHealth>>,
    /// Divergence rollbacks performed by the supervisor.
    pub rollbacks: usize,
    /// First epoch this run executed (> 0 when resumed from a checkpoint).
    pub start_epoch: usize,
    /// The recorded telemetry timeline (`Some` only when
    /// `HccConfig::telemetry_path` was set).
    pub timeline: Option<hcc_telemetry::Timeline>,
}

impl HccReport {
    /// Total wall-clock training time.
    pub fn total_time(&self) -> Duration {
        self.epoch_times.iter().sum()
    }

    /// The paper's Eq. 8 "computing power": updates per second.
    pub fn computing_power(&self) -> f64 {
        let secs = self.total_time().as_secs_f64();
        if secs > 0.0 {
            self.total_updates as f64 / secs
        } else {
            0.0
        }
    }

    /// Final training RMSE, if tracked.
    pub fn final_rmse(&self) -> Option<f64> {
        self.rmse_history.last().copied()
    }

    /// Cumulative per-worker phase totals over all epochs (Fig. 8 bars).
    pub fn cumulative_worker_stats(&self) -> Vec<WorkerEpochStats> {
        let workers = self.worker_stats.first().map_or(0, Vec::len);
        let mut acc = vec![WorkerEpochStats::default(); workers];
        for epoch in &self.worker_stats {
            for (slot, stat) in acc.iter_mut().zip(epoch) {
                slot.pull += stat.pull;
                slot.compute += stat.compute;
                slot.push += stat.push;
                slot.updates += stat.updates;
            }
        }
        acc
    }

    /// Total communication time: Σ over workers and epochs of pull + push.
    pub fn total_comm_time(&self) -> Duration {
        self.worker_stats
            .iter()
            .flat_map(|epoch| epoch.iter())
            .map(|s| s.pull + s.push)
            .sum()
    }

    /// The final partition vector.
    pub fn final_partition(&self) -> Option<&[f64]> {
        self.partition_history.last().map(|v| v.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> HccReport {
        let stats = vec![
            vec![
                WorkerEpochStats {
                    pull: Duration::from_millis(1),
                    compute: Duration::from_millis(10),
                    push: Duration::from_millis(2),
                    updates: 100,
                },
                WorkerEpochStats {
                    pull: Duration::from_millis(2),
                    compute: Duration::from_millis(11),
                    push: Duration::from_millis(1),
                    updates: 200,
                },
            ];
            3
        ];
        HccReport {
            p: FactorMatrix::zeros(1, 1),
            q: FactorMatrix::zeros(1, 1),
            rmse_history: vec![1.0, 0.8],
            epoch_times: vec![Duration::from_millis(20); 3],
            worker_stats: stats,
            sync_times: vec![Duration::from_millis(1); 3],
            partition_history: vec![vec![0.4, 0.6]],
            strategy_used: StrategyChoice::Dp1,
            total_updates: 900,
            wire_bytes: 4_096,
            transposed: false,
            health_history: Vec::new(),
            rollbacks: 0,
            start_epoch: 0,
            timeline: None,
        }
    }

    #[test]
    fn totals_and_power() {
        let r = report();
        assert_eq!(r.total_time(), Duration::from_millis(60));
        assert!((r.computing_power() - 900.0 / 0.060).abs() < 1.0);
        assert_eq!(r.final_rmse(), Some(0.8));
        assert_eq!(r.final_partition(), Some(&[0.4, 0.6][..]));
    }

    #[test]
    fn cumulative_stats_sum_epochs() {
        let r = report();
        let acc = r.cumulative_worker_stats();
        assert_eq!(acc.len(), 2);
        assert_eq!(acc[0].compute, Duration::from_millis(30));
        assert_eq!(acc[1].updates, 600);
        assert_eq!(r.total_comm_time(), Duration::from_millis(18));
    }

    #[test]
    fn worker_epoch_total() {
        let s = WorkerEpochStats {
            pull: Duration::from_millis(1),
            compute: Duration::from_millis(2),
            push: Duration::from_millis(3),
            updates: 0,
        };
        assert_eq!(s.total(), Duration::from_millis(6));
    }
}
