//! Downstream recommendation API: what an application does with the trained
//! factors (the paper's motivating use case, §2.1).

use hcc_sgd::{dot, FactorMatrix};
use hcc_sparse::{CooMatrix, CsrMatrix};

/// Serves predictions and top-k recommendations from trained factors.
#[derive(Debug, Clone)]
pub struct Recommender {
    p: FactorMatrix,
    q: FactorMatrix,
    seen: CsrMatrix,
}

impl Recommender {
    /// Builds a recommender from trained factors and the training matrix
    /// (used to exclude already-rated items).
    ///
    /// # Panics
    /// Panics if factor dimensions don't match the matrix.
    pub fn new(p: FactorMatrix, q: FactorMatrix, train: &CooMatrix) -> Recommender {
        assert_eq!(p.rows(), train.rows() as usize, "P rows must match users");
        assert_eq!(q.rows(), train.cols() as usize, "Q rows must match items");
        assert_eq!(p.k(), q.k(), "P and Q must share k");
        Recommender {
            p,
            q,
            seen: CsrMatrix::from(train),
        }
    }

    /// Predicted rating for `(user, item)`.
    pub fn predict(&self, user: u32, item: u32) -> f32 {
        dot(self.p.row(user as usize), self.q.row(item as usize))
    }

    /// The `count` highest-predicted items for `user`, excluding items the
    /// user already rated. Returns `(item, score)` sorted descending.
    pub fn top_k(&self, user: u32, count: usize) -> Vec<(u32, f32)> {
        let (seen_items, _) = self.seen.row(user);
        let mut seen_sorted: Vec<u32> = seen_items.to_vec();
        seen_sorted.sort_unstable();
        let mut scored: Vec<(u32, f32)> = (0..self.q.rows() as u32)
            .filter(|i| seen_sorted.binary_search(i).is_err())
            .map(|i| (i, self.predict(user, i)))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        scored.truncate(count);
        scored
    }

    /// Number of users.
    pub fn users(&self) -> usize {
        self.p.rows()
    }

    /// Number of items.
    pub fn items(&self) -> usize {
        self.q.rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_sparse::Rating;

    fn setup() -> Recommender {
        // 2 users, 3 items, k=1: scores are products of scalars.
        let p = FactorMatrix::from_vec(2, 1, vec![1.0, 2.0]);
        let q = FactorMatrix::from_vec(3, 1, vec![3.0, 1.0, 2.0]);
        let train =
            CooMatrix::new(2, 3, vec![Rating::new(0, 0, 5.0), Rating::new(1, 2, 4.0)]).unwrap();
        Recommender::new(p, q, &train)
    }

    #[test]
    fn predict_is_dot_product() {
        let r = setup();
        assert_eq!(r.predict(0, 0), 3.0);
        assert_eq!(r.predict(1, 2), 4.0);
    }

    #[test]
    fn top_k_excludes_seen_and_sorts() {
        let r = setup();
        // User 0 has seen item 0; remaining scores: item1=1, item2=2.
        assert_eq!(r.top_k(0, 2), vec![(2, 2.0), (1, 1.0)]);
        // User 1 has seen item 2; remaining: item0=6, item1=2.
        assert_eq!(r.top_k(1, 1), vec![(0, 6.0)]);
    }

    #[test]
    fn top_k_truncates() {
        let r = setup();
        assert_eq!(r.top_k(0, 10).len(), 2);
        assert!(r.top_k(0, 0).is_empty());
    }

    #[test]
    fn dims() {
        let r = setup();
        assert_eq!(r.users(), 2);
        assert_eq!(r.items(), 3);
    }
}
