//! Framework error type.

use std::fmt;

/// Errors surfaced by the HCC-MF training pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum HccError {
    /// The configuration is inconsistent (message explains).
    BadConfig(String),
    /// The input matrix can't be trained on (empty, degenerate…).
    BadInput(String),
    /// An underlying sparse-matrix operation failed.
    Sparse(hcc_sparse::SparseError),
}

impl fmt::Display for HccError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HccError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
            HccError::BadInput(msg) => write!(f, "bad input: {msg}"),
            HccError::Sparse(err) => write!(f, "sparse error: {err}"),
        }
    }
}

impl std::error::Error for HccError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HccError::Sparse(err) => Some(err),
            _ => None,
        }
    }
}

impl From<hcc_sparse::SparseError> for HccError {
    fn from(err: hcc_sparse::SparseError) -> Self {
        HccError::Sparse(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = HccError::BadConfig("k must be > 0".into());
        assert!(e.to_string().contains("k must be > 0"));
        let s: HccError = hcc_sparse::SparseError::EmptyDimension { what: "rows" }.into();
        assert!(std::error::Error::source(&s).is_some());
    }
}
