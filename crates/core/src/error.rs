//! Framework error type.

use std::fmt;

/// Errors surfaced by the HCC-MF training pipeline.
///
/// Variants split into *fatal* configuration/input problems and *runtime*
/// failures the fault-tolerance layer can classify: [`Io`](HccError::Io) and
/// [`Comm`](HccError::Comm) are often retryable; [`Diverged`](HccError::Diverged)
/// and [`WorkerLost`](HccError::WorkerLost) mean the supervisor exhausted its
/// recovery budget.
#[derive(Debug, Clone, PartialEq)]
pub enum HccError {
    /// The configuration is inconsistent (message explains).
    BadConfig(String),
    /// The input matrix can't be trained on (empty, degenerate…).
    BadInput(String),
    /// An underlying sparse-matrix operation failed.
    Sparse(hcc_sparse::SparseError),
    /// Filesystem failure (checkpoint read/write; message carries the OS
    /// error, source dropped so the type stays `Clone`).
    Io(String),
    /// A checkpoint file failed integrity validation (bad magic, truncated,
    /// CRC mismatch, or absurd dimensions).
    CorruptCheckpoint(String),
    /// A transport operation failed after the configured retries.
    Comm(String),
    /// Training diverged and the supervisor ran out of rollback retries.
    Diverged {
        /// Epoch at which the final divergence was detected.
        epoch: usize,
        /// Rollbacks attempted before giving up.
        rollbacks: usize,
    },
    /// A worker died (crash, panic, or lost heartbeat) and no survivors
    /// remain to take over its shard.
    WorkerLost(String),
}

impl fmt::Display for HccError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HccError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
            HccError::BadInput(msg) => write!(f, "bad input: {msg}"),
            HccError::Sparse(err) => write!(f, "sparse error: {err}"),
            HccError::Io(msg) => write!(f, "io error: {msg}"),
            HccError::CorruptCheckpoint(msg) => write!(f, "corrupt checkpoint: {msg}"),
            HccError::Comm(msg) => write!(f, "transport error: {msg}"),
            HccError::Diverged { epoch, rollbacks } => write!(
                f,
                "training diverged at epoch {epoch} after {rollbacks} rollback(s)"
            ),
            HccError::WorkerLost(msg) => write!(f, "worker lost: {msg}"),
        }
    }
}

impl std::error::Error for HccError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HccError::Sparse(err) => Some(err),
            _ => None,
        }
    }
}

impl From<hcc_sparse::SparseError> for HccError {
    fn from(err: hcc_sparse::SparseError) -> Self {
        HccError::Sparse(err)
    }
}

impl From<std::io::Error> for HccError {
    fn from(err: std::io::Error) -> Self {
        HccError::Io(err.to_string())
    }
}

impl From<hcc_comm::CommError> for HccError {
    fn from(err: hcc_comm::CommError) -> Self {
        HccError::Comm(err.to_string())
    }
}

impl HccError {
    /// True for failures a caller may reasonably retry (transient transport
    /// or filesystem trouble), false for configuration errors and exhausted
    /// recovery budgets.
    pub fn is_retryable(&self) -> bool {
        matches!(self, HccError::Io(_) | HccError::Comm(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = HccError::BadConfig("k must be > 0".into());
        assert!(e.to_string().contains("k must be > 0"));
        let s: HccError = hcc_sparse::SparseError::EmptyDimension { what: "rows" }.into();
        assert!(std::error::Error::source(&s).is_some());
    }

    #[test]
    fn runtime_variants_display() {
        let d = HccError::Diverged {
            epoch: 4,
            rollbacks: 3,
        };
        assert!(d.to_string().contains("epoch 4"));
        assert!(d.to_string().contains("3 rollback"));
        let w = HccError::WorkerLost("all workers dead".into());
        assert!(w.to_string().contains("all workers dead"));
        let c = HccError::CorruptCheckpoint("crc mismatch".into());
        assert!(c.to_string().contains("crc mismatch"));
    }

    #[test]
    fn conversions_and_retryability() {
        let io: HccError = std::io::Error::other("disk on fire").into();
        assert!(matches!(io, HccError::Io(_)));
        assert!(io.is_retryable());
        let comm: HccError = hcc_comm::CommError::Timeout.into();
        assert!(matches!(comm, HccError::Comm(_)));
        assert!(comm.is_retryable());
        // The network-fault variants convert (and stay retryable) too: a
        // corrupt frame or partitioned link is transient from the caller's
        // perspective — the supervisor decides when to give up.
        for err in [
            hcc_comm::CommError::Corrupt,
            hcc_comm::CommError::PartitionedLink,
            hcc_comm::CommError::Disconnected,
        ] {
            let e: HccError = err.into();
            assert!(matches!(e, HccError::Comm(_)), "{err:?}");
            assert!(e.is_retryable(), "{err:?}");
        }
        assert!(!HccError::Diverged {
            epoch: 0,
            rollbacks: 0
        }
        .is_retryable());
        assert!(!HccError::BadInput("empty".into()).is_retryable());
        // A corrupt checkpoint never heals by retrying the read.
        assert!(!HccError::CorruptCheckpoint("crc".into()).is_retryable());
    }
}
