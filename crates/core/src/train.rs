//! The training orchestrator: preprocessing, partition planning, and the
//! `pull → compute → push → sync` epoch loop of Fig. 4.

use crate::checkpoint::{load_checkpoint, save_checkpoint, ResumeState, TrainingMeta};
use crate::config::{HccConfig, Optimizer, PartitionMode, TransportKind, WorkerSpec};
use crate::error::HccError;
use crate::fault::FaultKind;
use crate::report::{HccReport, WorkerEpochStats};
use crate::server::{merge_weighted, merge_weights, region_layout, RegionLayout, ShardedServer};
use crate::supervisor::{Supervisor, WorkerHealth};
use crate::worker::{bucket_by_stream, rebase_entries, stream_col_range, WorkerState};
use hcc_comm::socket::NetEventKind;
use hcc_comm::{
    Backoff, ChaosTransport, CommError, CommP, CommShared, CommSocket, Precision, TransferStrategy,
    Transport,
};
use hcc_partition::{
    dp0, dp1_step, dp2, replan_survivors, ShardRouter, StrategyChoice, WorkerClass,
};
use hcc_sgd::{rmse_parallel, FactorMatrix, SharedFactors};
use hcc_sparse::{Axis, CooMatrix, GridPartition};
use hcc_telemetry::{Dir, Event, NetCause, Phase, Telemetry};
use parking_lot::Mutex;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The HCC-MF framework entry point.
#[derive(Debug, Clone)]
pub struct HccMf {
    config: HccConfig,
}

impl HccMf {
    /// Wraps a validated configuration.
    pub fn new(config: HccConfig) -> HccMf {
        HccMf { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &HccConfig {
        &self.config
    }

    /// Trains factor matrices for `matrix`, returning the report.
    pub fn train(&self, matrix: &CooMatrix) -> Result<HccReport, HccError> {
        self.config.validate()?;
        if matrix.nnz() == 0 {
            return Err(HccError::BadInput("matrix has no observed entries".into()));
        }
        if self.config.streams > 1 {
            if self.config.transport != TransportKind::Shared {
                return Err(HccError::BadConfig(
                    "asynchronous computing-transmission requires the shared COMM".into(),
                ));
            }
            if self.config.strategy == TransferStrategy::FullPq {
                return Err(HccError::BadConfig(
                    "asynchronous computing-transmission requires Q-only transfers".into(),
                ));
            }
        }

        // Preprocessing (Fig. 4 steps ①–③): pick the grid axis by the longer
        // dimension; internally we always row-grid, transposing when needed
        // (the "Transmit P only" switch of Strategy 1).
        let transposed = Axis::for_matrix(matrix.rows(), matrix.cols()) == Axis::Col;
        let mut work = if transposed {
            matrix.clone().transpose()
        } else {
            matrix.clone()
        };
        if self.config.shuffle {
            let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
            work.shuffle(&mut rng);
        }

        // Resume: restore factors and loop state from a v2 checkpoint.
        let resume = match &self.config.resume {
            Some(path) => Some(validate_resume(
                load_checkpoint(path)?,
                &self.config,
                &work,
                transposed,
            )?),
            None => None,
        };

        let mut session = Session::create(&self.config, work)?;
        if let Some(state) = resume {
            session.apply_resume(state)?;
        }
        session.run(transposed)?;
        let report = session.into_report(transposed);
        if let (Some(path), Some(timeline)) = (&self.config.telemetry_path, &report.timeline) {
            std::fs::write(path, hcc_telemetry::jsonl::to_jsonl(timeline))
                .map_err(|e| HccError::Io(format!("writing telemetry {}: {e}", path.display())))?;
        }
        Ok(report)
    }
}

/// Stable strategy identifier for telemetry headers (distinct from the
/// paper-table labels of [`TransferStrategy::label`]).
fn strategy_wire_name(s: TransferStrategy) -> &'static str {
    match s {
        TransferStrategy::FullPq => "full-pq",
        TransferStrategy::QOnly => "q-only",
        TransferStrategy::HalfQ => "half-q",
    }
}

/// Checks a loaded checkpoint against the run it is asked to continue.
fn validate_resume(
    state: ResumeState,
    config: &HccConfig,
    work: &CooMatrix,
    transposed: bool,
) -> Result<ResumeState, HccError> {
    let (m, n) = (work.rows() as usize, work.cols() as usize);
    if state.p.rows() != m || state.q.rows() != n || state.p.k() != config.k {
        return Err(HccError::BadConfig(format!(
            "resume checkpoint is {}x{} at k = {}, this run needs {m}x{n} at k = {}",
            state.p.rows(),
            state.q.rows(),
            state.p.k(),
            config.k
        )));
    }
    if state.meta.transposed != transposed {
        return Err(HccError::BadConfig(
            "resume checkpoint orientation does not match this matrix".into(),
        ));
    }
    if state.meta.seed != config.seed {
        return Err(HccError::BadConfig(format!(
            "resume checkpoint was trained with seed {}, config has seed {} \
             (resumed epochs would not reproduce the original run)",
            state.meta.seed, config.seed
        )));
    }
    if state.meta.epoch >= config.epochs {
        return Err(HccError::BadConfig(format!(
            "resume checkpoint already completed epoch {} >= configured epochs {}",
            state.meta.epoch, config.epochs
        )));
    }
    Ok(state)
}

/// Extracts a printable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".into()
    }
}

/// Maps a transport error to its telemetry cause tag.
fn net_cause(err: CommError) -> NetCause {
    match err {
        CommError::Timeout => NetCause::Timeout,
        CommError::Corrupt => NetCause::Corrupt,
        CommError::Disconnected => NetCause::Disconnected,
        CommError::PartitionedLink => NetCause::Partitioned,
    }
}

/// Keeps the elements of `items` whose index is flagged alive.
fn filter_alive<T: Clone>(items: &[T], alive: &[bool]) -> Vec<T> {
    items
        .iter()
        .zip(alive)
        .filter(|(_, &a)| a)
        .map(|(v, _)| v.clone())
        .collect()
}

/// Result of one executed (not yet accepted) epoch.
struct EpochOutcome {
    stats: Vec<WorkerEpochStats>,
    sync_time: Duration,
    /// `missed[w]`: the server got no valid push from worker `w` this epoch.
    missed: Vec<bool>,
}

/// Everything a training run owns.
struct Session<'a> {
    config: &'a HccConfig,
    work: CooMatrix,
    m: usize,
    n: usize,
    k: usize,
    global_p: FactorMatrix,
    global_q: Vec<f32>,
    fractions: Vec<f64>,
    classes: Vec<WorkerClass>,
    /// Worker specs currently in the fleet (shrinks when workers die).
    specs: Vec<WorkerSpec>,
    /// Original config index of each current worker — fault plans and
    /// display names keep addressing the machine a worker started as.
    orig_ids: Vec<usize>,
    workers: Vec<WorkerState>,
    layout: RegionLayout,
    transport: TransportArc,
    /// Deterministic network-chaos wrapper around `transport`, built when
    /// `config.net_chaos` is set. The epoch loop routes pull/push/collect
    /// through it via [`active_transport`](Session::active_transport);
    /// wire-byte accounting keeps reading the inner transport directly.
    net_chaos: Option<Arc<ChaosTransport>>,
    // Fault tolerance.
    supervisor: Option<Supervisor>,
    /// Last-good `(P, Q)` for divergence rollback.
    snapshot: Option<(FactorMatrix, Vec<f32>)>,
    start_epoch: usize,
    /// Cumulative learning-rate backoff from divergence rollbacks.
    lr_scale: f64,
    health_history: Vec<Vec<WorkerHealth>>,
    // Accumulated report data.
    rmse_history: Vec<f64>,
    epoch_times: Vec<Duration>,
    worker_stats: Vec<Vec<WorkerEpochStats>>,
    sync_times: Vec<Duration>,
    partition_history: Vec<Vec<f64>>,
    strategy_used: StrategyChoice,
    total_updates: u64,
    /// Observability handle; disabled (a no-op behind one branch) unless
    /// `config.telemetry_path` is set. Lanes are indexed by *starting-fleet*
    /// worker id plus the server lane, so a shrinking fleet keeps stable
    /// attribution via `orig_ids`.
    telemetry: Telemetry,
}

/// Transport handle: the async path needs the concrete `CommShared` for
/// ranged/chunked operations; the sync path only the trait. The socket
/// variant is additionally queried for its resilience counters/events, and
/// the sharded variant for its delta-shipping accounting.
enum TransportArc {
    Shared(Arc<CommShared>),
    CommP(Arc<CommP>),
    Socket(Arc<CommSocket>),
    Sharded(Arc<ShardedServer>),
}

impl TransportArc {
    fn as_dyn(&self) -> &dyn Transport {
        match self {
            TransportArc::Shared(t) => t.as_ref(),
            TransportArc::CommP(t) => t.as_ref(),
            TransportArc::Socket(t) => t.as_ref(),
            TransportArc::Sharded(t) => t.as_ref(),
        }
    }

    fn as_dyn_arc(&self) -> Arc<dyn Transport> {
        match self {
            TransportArc::Shared(t) => Arc::clone(t) as Arc<dyn Transport>,
            TransportArc::CommP(t) => Arc::clone(t) as Arc<dyn Transport>,
            TransportArc::Socket(t) => Arc::clone(t) as Arc<dyn Transport>,
            TransportArc::Sharded(t) => Arc::clone(t) as Arc<dyn Transport>,
        }
    }

    fn socket(&self) -> Option<&CommSocket> {
        match self {
            TransportArc::Socket(t) => Some(t.as_ref()),
            _ => None,
        }
    }

    fn wire_bytes(&self) -> u64 {
        self.as_dyn().wire_bytes()
    }
}

impl<'a> Session<'a> {
    fn create(config: &'a HccConfig, work: CooMatrix) -> Result<Session<'a>, HccError> {
        let m = work.rows() as usize;
        let n = work.cols() as usize;
        let k = config.k;
        let (global_p, global_q) = match &config.warm_start {
            Some((p0, q0)) => {
                // Warm-start factors arrive in input orientation; `work` may
                // be transposed, in which case P and Q swap roles.
                let (p0, q0) = if m == p0.rows() && n == q0.rows() {
                    (p0.clone(), q0.clone())
                } else if m == q0.rows() && n == p0.rows() {
                    (q0.clone(), p0.clone())
                } else {
                    return Err(HccError::BadConfig(format!(
                        "warm-start dimensions {}x{} don't match matrix {m}x{n}",
                        p0.rows(),
                        q0.rows()
                    )));
                };
                (p0, q0.into_vec())
            }
            None => (
                FactorMatrix::random(m, k, config.seed),
                FactorMatrix::random(n, k, config.seed ^ 0x9e37_79b9).into_vec(),
            ),
        };
        let classes: Vec<WorkerClass> = config
            .workers
            .iter()
            .map(|w| {
                if w.is_gpu {
                    WorkerClass::Gpu
                } else {
                    WorkerClass::Cpu
                }
            })
            .collect();

        let fractions = initial_fractions(config, &work)?;
        let worker_count = config.workers.len();
        let telemetry = if config.telemetry_path.is_some() {
            Telemetry::enabled(
                hcc_telemetry::Header {
                    workers: worker_count as u32,
                    k: k as u32,
                    nnz: work.nnz() as u64,
                    strategy: strategy_wire_name(config.strategy).to_string(),
                    streams: config.streams as u32,
                    backend: hcc_sgd::simd::dispatch_tag().to_string(),
                    schedule: config.schedule.name().to_string(),
                },
                hcc_telemetry::DEFAULT_LANE_CAPACITY,
            )
        } else {
            Telemetry::disabled()
        };

        let mut session = Session {
            config,
            work,
            m,
            n,
            k,
            global_p,
            global_q,
            fractions: fractions.clone(),
            classes,
            specs: config.workers.clone(),
            orig_ids: (0..worker_count).collect(),
            workers: Vec::new(),
            supervisor: config
                .fault_tolerance
                .clone()
                .map(|cfg| Supervisor::new(cfg, worker_count)),
            snapshot: None,
            start_epoch: 0,
            lr_scale: 1.0,
            health_history: Vec::new(),
            layout: region_layout(config.strategy, m, n, k, m),
            transport: TransportArc::Shared(Arc::new(CommShared::new(1, 1, 1, Precision::Fp32))),
            net_chaos: None,
            rmse_history: Vec::new(),
            epoch_times: Vec::new(),
            worker_stats: Vec::new(),
            sync_times: Vec::new(),
            partition_history: Vec::new(),
            strategy_used: match config.partition {
                PartitionMode::Uniform | PartitionMode::Dp0 => StrategyChoice::Dp0,
                PartitionMode::Dp1 => StrategyChoice::Dp1,
                PartitionMode::Dp2 => StrategyChoice::Dp2,
                PartitionMode::Auto => StrategyChoice::Dp1, // revised during adaptation
            },
            total_updates: 0,
            telemetry,
        };
        session.rebuild_workers(fractions)?;
        Ok(session)
    }

    /// The transport the epoch loop should use: the chaos wrapper when
    /// network-fault injection is configured, the bare transport otherwise.
    fn active_transport(&self) -> &dyn Transport {
        match &self.net_chaos {
            Some(chaos) => chaos.as_ref(),
            None => self.transport.as_dyn(),
        }
    }

    /// (Re)builds worker states and the transport for a partition vector.
    /// Worker-held `P` rows are flushed into `global_p` first so no training
    /// progress is lost across repartitions. Fallible because the socket
    /// transport binds an OS resource.
    fn rebuild_workers(&mut self, fractions: Vec<f64>) -> Result<(), HccError> {
        self.flush_local_p();
        let grid = GridPartition::build(&self.work, Axis::Row, &fractions);
        let k = self.k;
        let mut workers = Vec::with_capacity(self.specs.len());
        let mut max_rows = 0usize;
        for (w, spec) in self.specs.iter().enumerate() {
            let range = grid.range(w);
            max_rows = max_rows.max((range.end - range.start) as usize);
            let entries = rebase_entries(grid.shard(w), range.start);
            let stream_buckets = if self.config.streams > 1 {
                bucket_by_stream(&entries, self.n as u32, self.config.streams)
            } else {
                Vec::new()
            };
            let rows = (range.end - range.start) as usize;
            let local_p = SharedFactors::zeros(rows.max(1), k);
            if rows > 0 {
                let packed: Vec<f32> = (range.start as usize..range.end as usize)
                    .flat_map(|r| self.global_p.row(r).iter().copied())
                    .collect();
                local_p.copy_rows_from_slice(0, rows, &packed);
            }
            let local_q = SharedFactors::zeros(self.n, k);
            let adagrad = match self.config.optimizer {
                Optimizer::AdaGrad { .. } => {
                    Some(hcc_sgd::AdaGradState::new(rows.max(1), self.n, k))
                }
                _ => None,
            };
            let momentum = match self.config.optimizer {
                Optimizer::Momentum { .. } => {
                    Some(hcc_sgd::MomentumState::new(rows.max(1), self.n, k))
                }
                _ => None,
            };
            workers.push(WorkerState {
                spec: spec.clone(),
                entries,
                stream_buckets,
                row_range: range,
                local_p,
                local_q,
                optimizer: self.config.optimizer,
                adagrad,
                momentum,
                schedule: self.config.schedule,
            });
        }
        self.layout = region_layout(self.config.strategy, self.m, self.n, k, max_rows);
        let precision = if self.config.strategy.is_compressed() {
            Precision::Fp16
        } else {
            Precision::Fp32
        };
        self.transport = if self.config.server_shards > 1 {
            // Node-sharded parameter server: the synchronized region is
            // tiled by contiguous row range across N shard endpoints of
            // the configured transport kind. The sharded wire is always
            // Fp32 — row-delta shipping replaces fp16 compression, and
            // delta framing (count + indices as f32) must stay exact.
            let shards = self.config.server_shards;
            let rows = self.layout.pull_len / k;
            let router = ShardRouter::uniform(rows, shards);
            let mut inners: Vec<Arc<dyn Transport>> = Vec::with_capacity(shards);
            for s in 0..shards {
                let pull = router.range(s).len() * k;
                let push = ShardedServer::shard_push_len(&router, s, k);
                let inner: Arc<dyn Transport> = match self.config.transport {
                    TransportKind::Shared => {
                        Arc::new(CommShared::new(workers.len(), pull, push, Precision::Fp32))
                    }
                    TransportKind::CommP => Arc::new(CommP::new(workers.len(), Precision::Fp32)),
                    TransportKind::Socket | TransportKind::Tcp => {
                        let cfg = hcc_comm::SocketConfig {
                            delta_push: true,
                            ..hcc_comm::SocketConfig::default()
                        };
                        let sock = if self.config.transport == TransportKind::Tcp {
                            CommSocket::with_config_tcp(
                                workers.len(),
                                pull,
                                push,
                                Precision::Fp32,
                                cfg,
                            )
                        } else {
                            CommSocket::with_config(workers.len(), pull, push, Precision::Fp32, cfg)
                        }
                        .map_err(|e| HccError::Comm(format!("binding shard {s} transport: {e}")))?;
                        Arc::new(sock)
                    }
                };
                inners.push(inner);
            }
            TransportArc::Sharded(Arc::new(ShardedServer::new(
                router,
                k,
                self.layout.pull_len,
                Precision::Fp32,
                inners,
            )))
        } else {
            match self.config.transport {
                TransportKind::Shared => TransportArc::Shared(Arc::new(CommShared::new(
                    workers.len(),
                    self.layout.pull_len,
                    self.layout.push_len,
                    precision,
                ))),
                TransportKind::CommP => {
                    TransportArc::CommP(Arc::new(CommP::new(workers.len(), precision)))
                }
                TransportKind::Socket => TransportArc::Socket(Arc::new(
                    CommSocket::new(
                        workers.len(),
                        self.layout.pull_len,
                        self.layout.push_len,
                        precision,
                    )
                    .map_err(|e| HccError::Comm(format!("binding socket transport: {e}")))?,
                )),
                TransportKind::Tcp => TransportArc::Socket(Arc::new(
                    CommSocket::new_tcp(
                        workers.len(),
                        self.layout.pull_len,
                        self.layout.push_len,
                        precision,
                    )
                    .map_err(|e| HccError::Comm(format!("binding tcp transport: {e}")))?,
                )),
            }
        };
        self.net_chaos = self.config.net_chaos.as_ref().map(|plan| {
            // The plan addresses workers by *starting-fleet* id; remap its
            // partition to the current fleet index, dropping it once that
            // worker has been removed (its link is already gone).
            let mut plan = plan.clone();
            if let Some(part) = plan.partition {
                plan.partition = self
                    .orig_ids
                    .iter()
                    .position(|&id| id == part.worker)
                    .map(|w| hcc_comm::Partition {
                        worker: w,
                        from_epoch: part.from_epoch,
                    });
            }
            Arc::new(ChaosTransport::new(self.transport.as_dyn_arc(), plan))
        });
        self.workers = workers;
        self.fractions = fractions;
        Ok(())
    }

    /// Restores factors and loop state from a validated v2 checkpoint.
    fn apply_resume(&mut self, state: ResumeState) -> Result<(), HccError> {
        self.global_p = state.p;
        self.global_q = state.q.into_vec();
        self.start_epoch = state.meta.epoch;
        self.lr_scale = state.meta.lr_scale as f64;
        if let Some(sup) = self.supervisor.as_mut() {
            sup.set_lr_scale(self.lr_scale);
        }
        // Worker states were seeded from the random init; re-copy the
        // restored rows. Clearing first stops rebuild flushing stale P.
        self.workers.clear();
        self.rebuild_workers(self.fractions.clone())
    }

    /// Writes every worker's `P` rows back into the global matrix.
    fn flush_local_p(&mut self) {
        for state in &self.workers {
            let lo = state.row_range.start as usize;
            let rows = state.rows();
            if rows == 0 {
                continue;
            }
            let packed = state.local_p.snapshot_rows(0, rows);
            for r in 0..rows {
                self.global_p
                    .row_mut(lo + r)
                    .copy_from_slice(&packed[r * self.k..(r + 1) * self.k]);
            }
        }
    }

    fn run(&mut self, transposed: bool) -> Result<(), HccError> {
        if self.supervisor.is_some() {
            // Baseline for the divergence guard + rollback snapshot.
            let baseline = self.evaluate();
            if let Some(sup) = self.supervisor.as_mut() {
                sup.observe_baseline(baseline);
            }
            self.snapshot = Some((self.global_p.clone(), self.global_q.clone()));
        }

        let mut epoch = self.start_epoch;
        while epoch < self.config.epochs {
            let lr = (f64::from(self.config.learning_rate.at(epoch)) * self.lr_scale) as f32;
            // Wire-byte baseline for this attempt (counters reset whenever
            // the transport is rebuilt, e.g. on rollback or repartition).
            let wire_base = self.transport.as_dyn().wire_bytes_by_dir();
            let epoch_start = Instant::now();
            let outcome = if self.supervisor.is_some() {
                self.run_epoch_supervised(lr, epoch)
            } else {
                // Unsupervised path: a worker panic would otherwise abort
                // the process at the scope join — surface it typed instead.
                let caught = catch_unwind(AssertUnwindSafe(|| {
                    if self.config.streams > 1 {
                        self.run_epoch_async(lr, epoch)
                    } else {
                        self.run_epoch_sync(lr, epoch)
                    }
                }));
                match caught {
                    Ok((stats, sync_time)) => {
                        let missed = vec![false; stats.len()];
                        EpochOutcome {
                            stats,
                            sync_time,
                            missed,
                        }
                    }
                    Err(payload) => {
                        return Err(HccError::WorkerLost(format!(
                            "worker thread panicked during epoch {epoch}: {}",
                            panic_message(payload.as_ref())
                        )))
                    }
                }
            };
            let elapsed = epoch_start.elapsed();

            // Divergence guard: NaN or explosion → rollback + LR backoff,
            // bounded by the supervisor's budget.
            let mut loss = None;
            if self.supervisor.is_some() {
                let l = self.evaluate();
                let sup = self.supervisor.as_mut().expect("supervised");
                if sup.is_diverged(l) {
                    match sup.rollback() {
                        Some(scale) => {
                            self.lr_scale = scale;
                            self.telemetry.record(
                                self.telemetry.server_lane(),
                                Event::Rollback {
                                    epoch: epoch as u32,
                                    lr_scale: scale,
                                },
                            );
                            let (p, q) = self
                                .snapshot
                                .clone()
                                .expect("snapshot precedes first epoch");
                            self.global_p = p;
                            self.global_q = q;
                            // Clear first: the diverged local factors must
                            // not be flushed over the restored snapshot.
                            self.workers.clear();
                            self.rebuild_workers(self.fractions.clone())?;
                            continue; // retry the same epoch at reduced LR
                        }
                        None => {
                            return Err(HccError::Diverged {
                                epoch,
                                rollbacks: sup.rollbacks_used() as usize,
                            })
                        }
                    }
                }
                sup.accept(l);
                loss = Some(l);
            }

            // The epoch is accepted: record it.
            if self.telemetry.is_enabled() {
                let lane = self.telemetry.server_lane();
                let (pull_now, push_now) = self.transport.as_dyn().wire_bytes_by_dir();
                self.telemetry.bytes(
                    epoch as u32,
                    Dir::Pull,
                    pull_now.saturating_sub(wire_base.0),
                );
                self.telemetry.bytes(
                    epoch as u32,
                    Dir::Push,
                    push_now.saturating_sub(wire_base.1),
                );
                self.telemetry.record(
                    lane,
                    Event::EpochEnd {
                        epoch: epoch as u32,
                        wall_us: elapsed.as_micros() as u64,
                    },
                );
            }
            // Drain the socket transport's resilience events every epoch
            // (bounding their buffer) and attribute them to this epoch on
            // the server lane via the workers' starting-fleet ids.
            if let Some(socket) = self.transport.socket() {
                let events = socket.drain_net_events();
                if self.telemetry.is_enabled() {
                    let lane = self.telemetry.server_lane();
                    for ev in events {
                        let worker = self.orig_ids.get(ev.worker).copied().unwrap_or(ev.worker);
                        let event = match ev.kind {
                            NetEventKind::Retry { cause, bytes } => Event::NetRetry {
                                epoch: epoch as u32,
                                worker: worker as u32,
                                cause: net_cause(cause),
                                delay_us: ev.delay_us,
                                bytes,
                            },
                            NetEventKind::Reconnect { attempt } => Event::Reconnect {
                                epoch: epoch as u32,
                                worker: worker as u32,
                                attempt,
                                delay_us: ev.delay_us,
                            },
                        };
                        self.telemetry.record(lane, event);
                    }
                }
            }
            self.epoch_times.push(elapsed);
            self.total_updates += outcome.stats.iter().map(|s| s.updates).sum::<u64>();
            self.sync_times.push(outcome.sync_time);
            self.partition_history.push(self.fractions.clone());
            if self.config.track_rmse {
                let rmse = match loss {
                    Some(l) => l,
                    None => self.evaluate(),
                };
                self.rmse_history.push(rmse);
            }

            // Health classification and survivor re-planning, then a fresh
            // rollback snapshot of the accepted state.
            if self.supervisor.is_some() {
                self.handle_health(&outcome, epoch)?;
                self.snapshot = Some((self.global_p.clone(), self.global_q.clone()));
            }
            self.worker_stats.push(outcome.stats);

            self.checkpoint_if_due(epoch, transposed)?;
            if self.config.track_rmse && self.should_stop_early() {
                break;
            }
            self.adapt(epoch)?;
            epoch += 1;
        }
        self.flush_local_p();
        Ok(())
    }

    /// Periodic crash-safe checkpoint (after epoch `epoch` is accepted).
    fn checkpoint_if_due(&mut self, epoch: usize, transposed: bool) -> Result<(), HccError> {
        let (Some(every), Some(path)) = (
            self.config.checkpoint_every,
            self.config.checkpoint_path.as_ref(),
        ) else {
            return Ok(());
        };
        if (epoch + 1) % every != 0 {
            return Ok(());
        }
        let t0 = Instant::now();
        self.flush_local_p();
        let q = FactorMatrix::from_vec(self.n, self.k, self.global_q.clone());
        let meta = TrainingMeta {
            epoch: epoch + 1,
            seed: self.config.seed,
            lr_scale: self.lr_scale as f32,
            transposed,
        };
        let result = save_checkpoint(path, &self.global_p, &q, &meta);
        self.telemetry.record(
            self.telemetry.server_lane(),
            Event::Checkpoint {
                epoch: epoch as u32,
                dur_us: t0.elapsed().as_micros() as u64,
            },
        );
        result
    }

    /// Classifies worker health after an accepted epoch; removes dead
    /// workers and re-plans the partition over the survivors.
    fn handle_health(&mut self, outcome: &EpochOutcome, epoch: usize) -> Result<(), HccError> {
        let compute: Vec<f64> = outcome
            .stats
            .iter()
            .map(|s| s.compute.as_secs_f64())
            .collect();
        let sup = self.supervisor.as_ref().expect("supervised");
        let beat: Vec<bool> = (0..self.workers.len())
            .map(|w| sup.board.has_beat(w, epoch))
            .collect();
        let health = sup.classify(&compute, &outcome.missed, &beat);
        if self.telemetry.is_enabled() {
            let lane = self.telemetry.server_lane();
            for (w, h) in health.iter().enumerate() {
                let worker = self.orig_ids[w] as u32;
                match h {
                    WorkerHealth::Straggler => self.telemetry.record(
                        lane,
                        Event::Straggler {
                            epoch: epoch as u32,
                            worker,
                        },
                    ),
                    WorkerHealth::Dead => self.telemetry.record(
                        lane,
                        Event::WorkerLost {
                            epoch: epoch as u32,
                            worker,
                        },
                    ),
                    _ => {}
                }
            }
        }
        self.health_history.push(health.clone());
        let alive: Vec<bool> = health.iter().map(|h| *h != WorkerHealth::Dead).collect();
        if alive.iter().all(|&a| a) {
            return Ok(());
        }
        let survivors = alive.iter().filter(|&&a| a).count();
        if survivors == 0 {
            return Err(HccError::WorkerLost(format!(
                "all {} workers died by epoch {epoch}",
                alive.len()
            )));
        }
        let fractions = replan_survivors(&self.fractions, &compute, &alive);
        self.specs = filter_alive(&self.specs, &alive);
        self.orig_ids = filter_alive(&self.orig_ids, &alive);
        self.classes = filter_alive(&self.classes, &alive);
        self.rebuild_workers(fractions)?;
        if let Some(sup) = self.supervisor.as_mut() {
            sup.board.resize(survivors);
        }
        Ok(())
    }

    /// Synchronous epoch: publish, parallel worker pull/compute/push, server
    /// collect+merge (overlapped with still-running workers).
    fn run_epoch_sync(&mut self, lr: f32, epoch: usize) -> (Vec<WorkerEpochStats>, Duration) {
        let k = self.k;
        let n = self.n;
        let layout = self.layout;
        let strategy = self.config.strategy;
        let transport = self.active_transport();
        let telemetry = &self.telemetry;
        let epoch_u32 = epoch as u32;
        let orig_ids = &self.orig_ids;

        // Publish: [P | Q] under FullPq, [Q] otherwise.
        let mut pull_staging = vec![0f32; layout.pull_len];
        if strategy == TransferStrategy::FullPq {
            pull_staging[..self.m * k].copy_from_slice(self.global_p.as_slice());
        }
        pull_staging[layout.pull_q_offset..layout.pull_q_offset + n * k]
            .copy_from_slice(&self.global_q);
        transport.publish(&pull_staging);

        let weights = merge_weights(
            &self
                .workers
                .iter()
                .map(|w| w.entries.len())
                .collect::<Vec<_>>(),
        );
        let lambda_p = self.config.lambda_p;
        let lambda_q = self.config.lambda_q;

        let stats: Mutex<Vec<WorkerEpochStats>> =
            Mutex::new(vec![WorkerEpochStats::default(); self.workers.len()]);
        let mut q_acc = vec![0f32; n * k];
        let mut p_updates: Vec<(usize, Vec<f32>)> = Vec::new();
        let mut sync_time = Duration::ZERO;

        std::thread::scope(|scope| {
            for (w, state) in self.workers.iter().enumerate() {
                let stats = &stats;
                scope.spawn(move || {
                    let lane = orig_ids[w] as u32;
                    // Fresh scoped thread each epoch: the previous epoch's
                    // scope join orders this writer after the last one.
                    telemetry.adopt_lane(lane);
                    let mut staging = vec![0f32; layout.pull_len.max(layout.push_len)];

                    // Pull.
                    let start = telemetry.now_us();
                    let t0 = Instant::now();
                    transport.pull(w, &mut staging[..layout.pull_len]);
                    state.local_q.copy_rows_from_slice(
                        0,
                        n,
                        &staging[layout.pull_q_offset..layout.pull_q_offset + n * k],
                    );
                    if strategy == TransferStrategy::FullPq && state.rows() > 0 {
                        let lo = state.row_range.start as usize;
                        state.local_p.copy_rows_from_slice(
                            0,
                            state.rows(),
                            &staging[lo * k..(lo + state.rows()) * k],
                        );
                    }
                    let pull = t0.elapsed();
                    telemetry.phase(lane, epoch_u32, lane, Phase::Pull, start, pull);

                    // Compute.
                    let start = telemetry.now_us();
                    let compute = state.compute(&state.entries, lr, lambda_p, lambda_q);
                    telemetry.phase(lane, epoch_u32, lane, Phase::Comp, start, compute);

                    // Push.
                    let start = telemetry.now_us();
                    let t0 = Instant::now();
                    let rows = state.rows();
                    let push_len = if strategy == TransferStrategy::FullPq {
                        let p_rows = state.local_p.snapshot_rows(0, rows);
                        staging[..rows * k].copy_from_slice(&p_rows);
                        let q = state.local_q.snapshot_rows(0, n);
                        staging[layout.push_q_offset..layout.push_q_offset + n * k]
                            .copy_from_slice(&q);
                        layout.push_q_offset + n * k
                    } else {
                        let q = state.local_q.snapshot_rows(0, n);
                        staging[..n * k].copy_from_slice(&q);
                        n * k
                    };
                    transport.push(w, &staging[..push_len]);
                    let push = t0.elapsed();
                    telemetry.phase(lane, epoch_u32, lane, Phase::Push, start, push);

                    stats.lock()[w] = WorkerEpochStats {
                        pull,
                        compute,
                        push,
                        updates: state.entries.len() as u64,
                    };
                });
            }

            // Server: collect and merge on this thread, overlapping the
            // remaining workers' computation (the DP2 hiding effect).
            let server_lane = telemetry.server_lane();
            let mut collect_staging = vec![0f32; layout.push_len];
            #[allow(clippy::needless_range_loop)] // w indexes three arrays
            for w in 0..self.workers.len() {
                transport.collect(w, &mut collect_staging[..layout.push_len]);
                let start = telemetry.now_us();
                let t0 = Instant::now();
                merge_weighted(
                    &mut q_acc,
                    &collect_staging[layout.push_q_offset..layout.push_q_offset + n * k],
                    weights[w],
                );
                if strategy == TransferStrategy::FullPq {
                    let rows = self.workers[w].rows();
                    p_updates.push((w, collect_staging[..rows * k].to_vec()));
                }
                let merged = t0.elapsed();
                sync_time += merged;
                // Sync spans live on the server lane but carry the merged
                // worker's id, so per-worker epoch sums include their share.
                telemetry.phase(
                    server_lane,
                    epoch_u32,
                    orig_ids[w] as u32,
                    Phase::Sync,
                    start,
                    merged,
                );
            }
        });

        self.global_q.copy_from_slice(&q_acc);
        for (w, p_rows) in p_updates {
            let lo = self.workers[w].row_range.start as usize;
            let rows = self.workers[w].rows();
            for r in 0..rows {
                self.global_p
                    .row_mut(lo + r)
                    .copy_from_slice(&p_rows[r * k..(r + 1) * k]);
            }
        }
        (stats.into_inner(), sync_time)
    }

    /// Supervised synchronous epoch: [`run_epoch_sync`](Self::run_epoch_sync)
    /// plus heartbeats, per-worker panic capture, deterministic fault
    /// injection, bounded-timeout collects with backoff, and push integrity
    /// checks. Missing or poisoned pushes are excluded from the merge and
    /// the remaining weights renormalized; when every push is lost the
    /// previous global `Q` is kept. Bit-identical to the plain sync epoch
    /// when no fault fires.
    fn run_epoch_supervised(&mut self, lr: f32, epoch: usize) -> EpochOutcome {
        let k = self.k;
        let n = self.n;
        let layout = self.layout;
        let strategy = self.config.strategy;
        let transport = self.active_transport();
        let telemetry = &self.telemetry;
        let epoch_u32 = epoch as u32;
        let sup = self.supervisor.as_ref().expect("supervised");
        let board = &sup.board;
        let timeout0 = sup.cfg.heartbeat_timeout;
        let retries = sup.cfg.collect_retries.max(1);
        let backoff = sup.cfg.retry_backoff.max(1.0);
        let plan = self.config.fault_plan.as_ref();
        let orig_ids = &self.orig_ids;

        let mut pull_staging = vec![0f32; layout.pull_len];
        if strategy == TransferStrategy::FullPq {
            pull_staging[..self.m * k].copy_from_slice(self.global_p.as_slice());
        }
        pull_staging[layout.pull_q_offset..layout.pull_q_offset + n * k]
            .copy_from_slice(&self.global_q);
        transport.publish(&pull_staging);

        let weights = merge_weights(
            &self
                .workers
                .iter()
                .map(|w| w.entries.len())
                .collect::<Vec<_>>(),
        );
        let lambda_p = self.config.lambda_p;
        let lambda_q = self.config.lambda_q;

        let stats: Mutex<Vec<WorkerEpochStats>> =
            Mutex::new(vec![WorkerEpochStats::default(); self.workers.len()]);
        let mut q_acc = vec![0f32; n * k];
        let mut p_updates: Vec<(usize, Vec<f32>)> = Vec::new();
        let mut sync_time = Duration::ZERO;
        let mut missed = vec![false; self.workers.len()];
        let mut accepted_weight = 0f32;

        std::thread::scope(|scope| {
            for (w, state) in self.workers.iter().enumerate() {
                let stats = &stats;
                scope.spawn(move || {
                    let body =
                        || {
                            let fault = plan.and_then(|p| p.at(orig_ids[w], epoch));
                            if fault == Some(FaultKind::Crash) {
                                return None; // no heartbeat, no push: dead
                            }
                            let lane = orig_ids[w] as u32;
                            // Writer handoff (see the stripe path above).
                            telemetry.adopt_lane(lane);
                            let mut staging = vec![0f32; layout.pull_len.max(layout.push_len)];

                            // Pull.
                            let start = telemetry.now_us();
                            let t0 = Instant::now();
                            transport.pull(w, &mut staging[..layout.pull_len]);
                            state.local_q.copy_rows_from_slice(
                                0,
                                n,
                                &staging[layout.pull_q_offset..layout.pull_q_offset + n * k],
                            );
                            if strategy == TransferStrategy::FullPq && state.rows() > 0 {
                                let lo = state.row_range.start as usize;
                                state.local_p.copy_rows_from_slice(
                                    0,
                                    state.rows(),
                                    &staging[lo * k..(lo + state.rows()) * k],
                                );
                            }
                            let pull = t0.elapsed();
                            telemetry.phase(lane, epoch_u32, lane, Phase::Pull, start, pull);

                            // Compute (an injected stall counts as compute time,
                            // so the supervisor's straggler rule sees it).
                            let start = telemetry.now_us();
                            let t0 = Instant::now();
                            if let Some(FaultKind::Stall { millis }) = fault {
                                std::thread::sleep(Duration::from_millis(millis));
                            }
                            state.compute(&state.entries, lr, lambda_p, lambda_q);
                            let compute = t0.elapsed();
                            telemetry.phase(lane, epoch_u32, lane, Phase::Comp, start, compute);
                            board.beat(w, epoch);

                            // Push.
                            let start = telemetry.now_us();
                            let t0 = Instant::now();
                            let rows = state.rows();
                            let push_len = if strategy == TransferStrategy::FullPq {
                                let p_rows = state.local_p.snapshot_rows(0, rows);
                                staging[..rows * k].copy_from_slice(&p_rows);
                                let q = state.local_q.snapshot_rows(0, n);
                                staging[layout.push_q_offset..layout.push_q_offset + n * k]
                                    .copy_from_slice(&q);
                                layout.push_q_offset + n * k
                            } else {
                                let q = state.local_q.snapshot_rows(0, n);
                                staging[..n * k].copy_from_slice(&q);
                                n * k
                            };
                            if fault == Some(FaultKind::CorruptPush) {
                                let positions = plan
                                    .expect("fault implies plan")
                                    .corrupt_positions(orig_ids[w], epoch, push_len);
                                state.poison_push(&mut staging[..push_len], &positions);
                            }
                            if fault != Some(FaultKind::DropPush) {
                                transport.push(w, &staging[..push_len]);
                            }
                            let push = t0.elapsed();
                            telemetry.phase(lane, epoch_u32, lane, Phase::Push, start, push);

                            Some(WorkerEpochStats {
                                pull,
                                compute,
                                push,
                                updates: state.entries.len() as u64,
                            })
                        };
                    match catch_unwind(AssertUnwindSafe(body)) {
                        Ok(Some(s)) => stats.lock()[w] = s,
                        Ok(None) | Err(_) => board.mark_dead(w),
                    }
                });
            }

            // Server: bounded-timeout collect per worker with backoff;
            // missing or non-finite pushes are skipped and flagged.
            let server_lane = telemetry.server_lane();
            let mut collect_staging = vec![0f32; layout.push_len];
            #[allow(clippy::needless_range_loop)] // w indexes several arrays
            for w in 0..self.workers.len() {
                // Jitter-free `Backoff` reproduces the historical
                // `timeout → timeout·factor → …` ladder bit-for-bit.
                let mut ladder = Backoff::new(timeout0, backoff);
                let mut got = false;
                for _attempt in 0..retries {
                    if board.is_dead(w) {
                        break;
                    }
                    let timeout = ladder.next_delay();
                    match transport.collect_timeout(
                        w,
                        &mut collect_staging[..layout.push_len],
                        timeout,
                    ) {
                        Ok(()) => {
                            got = true;
                            break;
                        }
                        // A corrupt frame degrades to a dropped one: wait
                        // out the next ladder step in case a retransmit
                        // (or a slow worker) still delivers a clean push.
                        Err(err @ (CommError::Timeout | CommError::Corrupt)) => {
                            telemetry.record(
                                server_lane,
                                Event::NetRetry {
                                    epoch: epoch_u32,
                                    worker: orig_ids[w] as u32,
                                    cause: net_cause(err),
                                    delay_us: timeout.as_micros() as u64,
                                    bytes: 0,
                                },
                            );
                        }
                        Err(CommError::Disconnected) => break,
                        // A partitioned worker keeps computing and beating
                        // its heartbeat, so classification alone would call
                        // it a straggler forever; declare the link dead so
                        // the survivors re-plan.
                        Err(CommError::PartitionedLink) => {
                            board.mark_dead(w);
                            break;
                        }
                    }
                }
                if !got {
                    missed[w] = true;
                    continue;
                }
                let start = telemetry.now_us();
                let t0 = Instant::now();
                let q_part = &collect_staging[layout.push_q_offset..layout.push_q_offset + n * k];
                if q_part.iter().any(|v| !v.is_finite()) {
                    missed[w] = true; // poisoned push: discard the shard
                    let merged = t0.elapsed();
                    sync_time += merged;
                    telemetry.phase(
                        server_lane,
                        epoch_u32,
                        orig_ids[w] as u32,
                        Phase::Sync,
                        start,
                        merged,
                    );
                    continue;
                }
                merge_weighted(&mut q_acc, q_part, weights[w]);
                accepted_weight += weights[w];
                if strategy == TransferStrategy::FullPq {
                    let rows = self.workers[w].rows();
                    p_updates.push((w, collect_staging[..rows * k].to_vec()));
                }
                let merged = t0.elapsed();
                sync_time += merged;
                telemetry.phase(
                    server_lane,
                    epoch_u32,
                    orig_ids[w] as u32,
                    Phase::Sync,
                    start,
                    merged,
                );
            }
        });

        if accepted_weight > 0.0 {
            if missed.iter().any(|&m| m) {
                // Renormalize over the accepted pushes so missing shards
                // don't shrink Q toward zero.
                let inv = 1.0 / accepted_weight;
                for v in q_acc.iter_mut() {
                    *v *= inv;
                }
            }
            self.global_q.copy_from_slice(&q_acc);
        }
        for (w, p_rows) in p_updates {
            let lo = self.workers[w].row_range.start as usize;
            let rows = self.workers[w].rows();
            for r in 0..rows {
                self.global_p
                    .row_mut(lo + r)
                    .copy_from_slice(&p_rows[r * k..(r + 1) * k]);
            }
        }
        EpochOutcome {
            stats: stats.into_inner(),
            sync_time,
            missed,
        }
    }

    /// Asynchronous epoch (Strategy 3): each worker pipelines
    /// `pull(s) → compute(s) → push(s)` over column chunks of `Q`; the
    /// server merges chunks as they arrive.
    fn run_epoch_async(&mut self, lr: f32, epoch: usize) -> (Vec<WorkerEpochStats>, Duration) {
        let comm = match &self.transport {
            TransportArc::Shared(c) => Arc::clone(c),
            TransportArc::CommP(_) | TransportArc::Socket(_) | TransportArc::Sharded(_) => {
                unreachable!("validated in train()")
            }
        };
        let telemetry = &self.telemetry;
        let epoch_u32 = epoch as u32;
        let orig_ids = &self.orig_ids;
        let k = self.k;
        let n = self.n;
        let streams = self.config.streams;
        let lambda_p = self.config.lambda_p;
        let lambda_q = self.config.lambda_q;
        let weights = merge_weights(
            &self
                .workers
                .iter()
                .map(|w| w.entries.len())
                .collect::<Vec<_>>(),
        );

        // Publish the whole Q once; workers pull it chunk-wise.
        comm.publish_at(0, &self.global_q);

        let stats: Mutex<Vec<WorkerEpochStats>> =
            Mutex::new(vec![WorkerEpochStats::default(); self.workers.len()]);
        let mut sync_time = Duration::ZERO;
        let global_q = &mut self.global_q;
        let total_chunks = self.workers.len() * streams;

        std::thread::scope(|scope| {
            for (w, state) in self.workers.iter().enumerate() {
                let comm = Arc::clone(&comm);
                let stats = &stats;
                scope.spawn(move || {
                    let lane = orig_ids[w] as u32;
                    // Writer handoff (see the stripe path above).
                    telemetry.adopt_lane(lane);
                    let start = telemetry.now_us();
                    let pipe_stats = hcc_comm::run_pipeline(
                        streams,
                        streams,
                        // Pull stage: read this chunk's Q columns.
                        |s| {
                            let range = stream_col_range(n as u32, streams, s);
                            let lo = range.start as usize;
                            let hi = range.end as usize;
                            let mut buf = vec![0f32; (hi - lo) * k];
                            comm.pull_at(lo * k, &mut buf);
                            state.local_q.copy_rows_from_slice(lo, hi, &buf);
                        },
                        // Compute stage: train the entries touching them.
                        |s, ()| {
                            state.compute(&state.stream_buckets[s], lr, lambda_p, lambda_q);
                        },
                        // Push stage: write the chunk back.
                        |s, ()| {
                            let range = stream_col_range(n as u32, streams, s);
                            let lo = range.start as usize;
                            let hi = range.end as usize;
                            let buf = state.local_q.snapshot_rows(lo, hi);
                            comm.push_chunk(w, lo * k, &buf);
                        },
                    );
                    // The pipeline interleaves the three stages, so only
                    // per-stage busy totals exist; record them as three
                    // spans sharing the pipeline's start time.
                    telemetry.phase(
                        lane,
                        epoch_u32,
                        lane,
                        Phase::Pull,
                        start,
                        pipe_stats.pull_busy,
                    );
                    telemetry.phase(
                        lane,
                        epoch_u32,
                        lane,
                        Phase::Comp,
                        start,
                        pipe_stats.compute_busy,
                    );
                    telemetry.phase(
                        lane,
                        epoch_u32,
                        lane,
                        Phase::Push,
                        start,
                        pipe_stats.push_busy,
                    );
                    stats.lock()[w] = WorkerEpochStats {
                        pull: pipe_stats.pull_busy,
                        compute: pipe_stats.compute_busy,
                        push: pipe_stats.push_busy,
                        updates: state.entries.len() as u64,
                    };
                });
            }

            // Server: merge chunks as they arrive (incremental multiply-add;
            // §4.2 notes the async path trades exactness for speed).
            let server_lane = telemetry.server_lane();
            let mut staging = vec![0f32; n * k];
            for _ in 0..total_chunks {
                let tag = comm.collect_chunk(&mut staging);
                let start = telemetry.now_us();
                let t0 = Instant::now();
                crate::server::merge_incremental(
                    &mut global_q[tag.offset..tag.offset + tag.len],
                    &staging[..tag.len],
                    weights[tag.worker],
                );
                let merged = t0.elapsed();
                sync_time += merged;
                telemetry.phase(
                    server_lane,
                    epoch_u32,
                    orig_ids[tag.worker] as u32,
                    Phase::Sync,
                    start,
                    merged,
                );
            }
        });

        (stats.into_inner(), sync_time)
    }

    /// Early-stopping check: the best RMSE of the last `patience` epochs
    /// must beat the best before them by the configured relative margin.
    fn should_stop_early(&self) -> bool {
        let Some(rule) = &self.config.early_stop else {
            return false;
        };
        let h = &self.rmse_history;
        if h.len() <= rule.patience {
            return false;
        }
        let split = h.len() - rule.patience;
        let prev_best = h[..split].iter().cloned().fold(f64::INFINITY, f64::min);
        let recent_best = h[split..].iter().cloned().fold(f64::INFINITY, f64::min);
        recent_best > prev_best * (1.0 - rule.min_rel_improvement)
    }

    /// Training-set RMSE with the current factors (worker-held `P` rows are
    /// read directly; they never travel for evaluation).
    fn evaluate(&mut self) -> f64 {
        self.flush_local_p();
        let q = FactorMatrix::from_vec(self.n, self.k, self.global_q.clone());
        rmse_parallel(self.work.entries(), &self.global_p, &q)
    }

    /// Post-epoch partition adaptation (Algorithm 1 / Eq. 7).
    fn adapt(&mut self, epoch: usize) -> Result<(), HccError> {
        let mode = self.config.partition;
        if !matches!(
            mode,
            PartitionMode::Dp1 | PartitionMode::Dp2 | PartitionMode::Auto
        ) {
            return Ok(());
        }
        if epoch + 1 >= self.config.epochs || epoch >= self.config.adapt_epochs {
            return Ok(());
        }
        let Some(stats) = self.worker_stats.last() else {
            return Ok(());
        };
        if stats.len() != self.fractions.len() {
            // The fleet shrank this epoch (supervisor removed dead workers);
            // last epoch's timings no longer line up with the partition.
            return Ok(());
        }
        let t: Vec<f64> = stats
            .iter()
            .map(|s| s.compute.as_secs_f64().max(1e-9))
            .collect();

        let last_adapt_epoch = epoch + 1 == self.config.adapt_epochs;
        if last_adapt_epoch && matches!(mode, PartitionMode::Dp2 | PartitionMode::Auto) {
            let sync_total = self
                .sync_times
                .last()
                .copied()
                .unwrap_or_default()
                .as_secs_f64();
            let sync_per_worker = sync_total / self.workers.len() as f64;
            let max_t = t.iter().cloned().fold(0.0f64, f64::max);
            let ratio = if sync_total > 0.0 {
                max_t / sync_total
            } else {
                f64::INFINITY
            };
            let want_dp2 = mode == PartitionMode::Dp2
                || (mode == PartitionMode::Auto && ratio < hcc_partition::CostModel::LAMBDA);
            if want_dp2 {
                let next = dp2(&self.fractions, &t, sync_per_worker);
                self.strategy_used = StrategyChoice::Dp2;
                return self.rebuild_workers(next);
            }
            self.strategy_used = StrategyChoice::Dp1;
        }

        if let Some(next) = dp1_step(&self.fractions, &t, &self.classes, 0.1) {
            self.rebuild_workers(next)?;
        }
        Ok(())
    }

    fn into_report(mut self, transposed: bool) -> HccReport {
        self.flush_local_p();
        let q = FactorMatrix::from_vec(self.n, self.k, std::mem::take(&mut self.global_q));
        let p = std::mem::replace(&mut self.global_p, FactorMatrix::zeros(1, 1));
        let (p, q) = if transposed { (q, p) } else { (p, q) };
        let timeline = std::mem::replace(&mut self.telemetry, Telemetry::disabled()).finish();
        HccReport {
            p,
            q,
            rmse_history: self.rmse_history,
            epoch_times: self.epoch_times,
            worker_stats: self.worker_stats,
            sync_times: self.sync_times,
            partition_history: self.partition_history,
            strategy_used: self.strategy_used,
            total_updates: self.total_updates,
            wire_bytes: self.transport.wire_bytes(),
            transposed,
            health_history: self.health_history,
            rollbacks: self
                .supervisor
                .as_ref()
                .map_or(0, |s| s.rollbacks_used() as usize),
            start_epoch: self.start_epoch,
            timeline,
        }
    }
}

/// Initial partition: uniform, or DP0 from a calibration run measuring each
/// worker's standalone rate on a sample of the data.
fn initial_fractions(config: &HccConfig, work: &CooMatrix) -> Result<Vec<f64>, HccError> {
    let p = config.workers.len();
    if config.partition == PartitionMode::Uniform {
        return Ok(vec![1.0 / p as f64; p]);
    }
    // Calibration: each worker sweeps the same sample; standalone time per
    // entry × nnz estimates T_i_e (Eq. 6's input).
    let sample_len = work.nnz().min(50_000);
    let sample = &work.entries()[..sample_len];
    let k = config.k;
    let m = work.rows() as usize;
    let n = work.cols() as usize;
    let mut standalone = Vec::with_capacity(p);
    for spec in &config.workers {
        let state = WorkerState {
            spec: spec.clone(),
            entries: Vec::new(),
            stream_buckets: Vec::new(),
            row_range: 0..work.rows(),
            local_p: SharedFactors::zeros(m, k),
            local_q: SharedFactors::zeros(n, k),
            optimizer: crate::config::Optimizer::Sgd,
            adagrad: None,
            momentum: None,
            schedule: config.schedule,
        };
        // Warm-up pass (thread spawn, page faults), then the measured pass.
        state.compute(&sample[..sample_len.min(4_096)], 0.0, 0.0, 0.0);
        let elapsed = state.compute(sample, 0.0, 0.0, 0.0);
        let per_entry = elapsed.as_secs_f64() / sample_len as f64;
        standalone.push((per_entry * work.nnz() as f64).max(1e-12));
    }
    Ok(dp0(&standalone))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkerSpec;
    use hcc_sgd::LearningRate;
    use hcc_sparse::{GenConfig, SyntheticDataset};

    fn dataset(rows: u32, cols: u32, nnz: usize) -> SyntheticDataset {
        SyntheticDataset::generate(GenConfig {
            rows,
            cols,
            nnz,
            noise: 0.0,
            ..GenConfig::default()
        })
    }

    fn base_config() -> crate::config::HccConfigBuilder {
        HccConfig::builder()
            .k(8)
            .epochs(12)
            .learning_rate(LearningRate::Constant(0.02))
            .lambda(0.01)
            .workers(vec![WorkerSpec::cpu(2), WorkerSpec::cpu(2)])
            .adapt_epochs(2)
            .track_rmse(true)
    }

    #[test]
    fn trains_and_converges_q_only() {
        let ds = dataset(300, 150, 8_000);
        let report = HccMf::new(base_config().build()).train(&ds.matrix).unwrap();
        let hist = &report.rmse_history;
        assert_eq!(hist.len(), 12);
        assert!(
            hist.last().unwrap() < &(hist[0] * 0.6),
            "no convergence: {} -> {}",
            hist[0],
            hist.last().unwrap()
        );
        assert_eq!(report.p.rows(), 300);
        assert_eq!(report.q.rows(), 150);
        assert!(report.wire_bytes > 0);
        assert!(!report.transposed);
    }

    #[test]
    fn trains_full_pq() {
        let ds = dataset(200, 100, 5_000);
        let cfg = base_config().strategy(TransferStrategy::FullPq).build();
        let report = HccMf::new(cfg).train(&ds.matrix).unwrap();
        assert!(report.rmse_history.last().unwrap() < &report.rmse_history[0]);
    }

    #[test]
    fn trains_half_q() {
        let ds = dataset(200, 100, 5_000);
        let cfg = base_config().strategy(TransferStrategy::HalfQ).build();
        let report = HccMf::new(cfg).train(&ds.matrix).unwrap();
        assert!(report.rmse_history.last().unwrap() < &report.rmse_history[0]);
        // FP16 wire: fewer bytes than FP32 would use.
        assert!(report.wire_bytes > 0);
    }

    #[test]
    fn wide_matrix_is_transposed_internally() {
        let ds = dataset(100, 400, 5_000);
        let report = HccMf::new(base_config().build()).train(&ds.matrix).unwrap();
        assert!(report.transposed);
        // Factors come back in input orientation.
        assert_eq!(report.p.rows(), 100);
        assert_eq!(report.q.rows(), 400);
        assert!(report.rmse_history.last().unwrap() < &report.rmse_history[0]);
    }

    #[test]
    fn comm_p_transport_trains_too() {
        let ds = dataset(150, 80, 3_000);
        let cfg = base_config().transport(TransportKind::CommP).build();
        let report = HccMf::new(cfg).train(&ds.matrix).unwrap();
        assert!(report.rmse_history.last().unwrap() < &report.rmse_history[0]);
    }

    #[test]
    fn async_streams_train() {
        let ds = dataset(200, 120, 6_000);
        let cfg = base_config().streams(3).build();
        let report = HccMf::new(cfg).train(&ds.matrix).unwrap();
        assert!(
            report.rmse_history.last().unwrap() < &(report.rmse_history[0] * 0.7),
            "async no convergence: {:?}",
            report.rmse_history
        );
    }

    #[test]
    fn async_rejects_full_pq_and_comm_p() {
        let ds = dataset(50, 30, 500);
        let cfg = base_config()
            .streams(2)
            .strategy(TransferStrategy::FullPq)
            .build();
        assert!(HccMf::new(cfg).train(&ds.matrix).is_err());
        let cfg = base_config()
            .streams(2)
            .transport(TransportKind::CommP)
            .build();
        assert!(HccMf::new(cfg).train(&ds.matrix).is_err());
    }

    #[test]
    fn empty_matrix_rejected() {
        let m = CooMatrix::new(5, 5, vec![]).unwrap();
        assert!(HccMf::new(base_config().build()).train(&m).is_err());
    }

    #[test]
    fn heterogeneous_workers_rebalance() {
        let ds = dataset(400, 150, 20_000);
        let cfg = base_config()
            .epochs(6)
            .adapt_epochs(3)
            .workers(vec![
                WorkerSpec::cpu(1).throttled(0.5),
                WorkerSpec::gpu_sim(4),
            ])
            .build();
        let report = HccMf::new(cfg).train(&ds.matrix).unwrap();
        let final_x = report.final_partition().unwrap();
        // The fast 4-thread "GPU" must hold more data than the throttled CPU.
        assert!(
            final_x[1] > final_x[0],
            "no rebalance: {final_x:?}, history {:?}",
            report.partition_history
        );
        assert!(report.rmse_history.last().unwrap() < &report.rmse_history[0]);
    }

    #[test]
    fn uniform_mode_never_repartitions() {
        let ds = dataset(200, 100, 4_000);
        let cfg = base_config()
            .partition(PartitionMode::Uniform)
            .epochs(4)
            .build();
        let report = HccMf::new(cfg).train(&ds.matrix).unwrap();
        for x in &report.partition_history {
            assert!(x.iter().all(|&v| (v - 0.5).abs() < 1e-12));
        }
        assert_eq!(report.strategy_used, StrategyChoice::Dp0);
    }

    #[test]
    fn dp2_mode_staggers_partition() {
        let ds = dataset(300, 150, 10_000);
        let cfg = base_config()
            .partition(PartitionMode::Dp2)
            .epochs(5)
            .adapt_epochs(2)
            .workers(vec![WorkerSpec::cpu(2), WorkerSpec::cpu(2)])
            .build();
        let report = HccMf::new(cfg).train(&ds.matrix).unwrap();
        assert_eq!(report.strategy_used, StrategyChoice::Dp2);
        // After the DP2 step, shares should differ (staggered).
        let final_x = report.final_partition().unwrap();
        assert!((final_x[0] - final_x[1]).abs() > 1e-6, "{final_x:?}");
    }

    #[test]
    fn report_accounting_is_consistent() {
        let ds = dataset(150, 80, 3_000);
        let cfg = base_config().epochs(3).build();
        let report = HccMf::new(cfg).train(&ds.matrix).unwrap();
        assert_eq!(report.epoch_times.len(), 3);
        assert_eq!(report.worker_stats.len(), 3);
        assert_eq!(report.sync_times.len(), 3);
        assert_eq!(report.partition_history.len(), 3);
        // Every entry is swept once per epoch.
        assert_eq!(report.total_updates, 3_000 * 3);
        assert!(report.computing_power() > 0.0);
    }
}
