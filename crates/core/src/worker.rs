//! Worker-side state and the per-epoch compute sweep.
//!
//! A worker owns a contiguous row range of `P` outright (row grid, §3.3),
//! keeps a private copy of `Q`, and sweeps its shard with Hogwild SGD. Shard
//! entries are stored with row indices already rebased to the worker's range
//! so the hot loop indexes `local_p` directly.

use crate::config::{Optimizer, WorkerSpec};
use hcc_sgd::adagrad::{adagrad_hogwild_epoch, AdaGradConfig, AdaGradState};
use hcc_sgd::momentum::{momentum_hogwild_epoch, MomentumConfig, MomentumState};
use hcc_sgd::{hogwild_epoch, HogwildConfig, Schedule, SharedFactors};
use hcc_sparse::Rating;
use std::ops::Range;
use std::time::{Duration, Instant};

/// Entries per throttle slice: small enough that a throttled worker's sleep
/// injection tracks its target rate closely, large enough to amortize the
/// per-call thread spawn.
const THROTTLE_CHUNK: usize = 65_536;

/// One worker's in-memory state.
pub(crate) struct WorkerState {
    /// Static description.
    pub spec: WorkerSpec,
    /// Shard entries; `u` is rebased by `row_range.start`.
    pub entries: Vec<Rating>,
    /// Entry buckets per pipeline stream (column-chunked; empty when the
    /// async path is off). `stream_buckets[s]` holds the entries whose
    /// column falls in stream `s`'s chunk of `Q`.
    pub stream_buckets: Vec<Vec<Rating>>,
    /// Owned global `P` rows.
    pub row_range: Range<u32>,
    /// Local `P` slice, `row_range.len() × k`.
    pub local_p: SharedFactors,
    /// Local `Q` copy, `n × k`.
    pub local_q: SharedFactors,
    /// The optimizer this worker runs.
    pub optimizer: Optimizer,
    /// AdaGrad accumulators (present iff `optimizer` is AdaGrad; reset on
    /// repartition, which re-creates worker states).
    pub adagrad: Option<AdaGradState>,
    /// Momentum velocity buffers (present iff `optimizer` is Momentum).
    pub momentum: Option<MomentumState>,
    /// Entry-to-thread schedule for the plain-SGD Hogwild sweep (the
    /// AdaGrad/Momentum kernels keep their own striped sweeps).
    pub schedule: Schedule,
}

impl WorkerState {
    /// Runs one epoch of Hogwild SGD over the shard (or one stream bucket),
    /// honouring the throttle. Returns elapsed compute time.
    pub fn compute(&self, entries: &[Rating], lr: f32, lambda_p: f32, lambda_q: f32) -> Duration {
        let start = Instant::now();
        let run = |chunk: &[Rating]| match (self.optimizer, &self.adagrad, &self.momentum) {
            (Optimizer::AdaGrad { eta0, epsilon }, Some(state), _) => {
                let cfg = AdaGradConfig {
                    threads: self.spec.threads,
                    eta0,
                    lambda_p,
                    lambda_q,
                    epsilon,
                };
                adagrad_hogwild_epoch(chunk, &self.local_p, &self.local_q, state, &cfg);
            }
            (Optimizer::Momentum { beta }, _, Some(state)) => {
                let cfg = MomentumConfig {
                    threads: self.spec.threads,
                    learning_rate: lr,
                    beta,
                    lambda_p,
                    lambda_q,
                };
                momentum_hogwild_epoch(chunk, &self.local_p, &self.local_q, state, &cfg);
            }
            _ => {
                let cfg = HogwildConfig {
                    threads: self.spec.threads,
                    learning_rate: lr,
                    lambda_p,
                    lambda_q,
                    schedule: self.schedule,
                };
                hogwild_epoch(chunk, &self.local_p, &self.local_q, &cfg);
            }
        };
        if self.spec.speed_factor >= 1.0 {
            run(entries);
        } else {
            for chunk in entries.chunks(THROTTLE_CHUNK) {
                let t0 = Instant::now();
                run(chunk);
                let elapsed = t0.elapsed();
                let penalty =
                    elapsed.mul_f64((1.0 - self.spec.speed_factor) / self.spec.speed_factor);
                std::thread::sleep(penalty);
            }
        }
        start.elapsed()
    }

    /// Number of rows this worker owns.
    pub fn rows(&self) -> usize {
        (self.row_range.end - self.row_range.start) as usize
    }

    /// Applies a [`FaultKind`](crate::fault::FaultKind) hook to this
    /// worker's outgoing push buffer (the CorruptPush fault): NaN-poisons
    /// the planned positions so the server's integrity check has something
    /// real to catch. Out-of-range positions are ignored.
    pub fn poison_push(&self, staging: &mut [f32], positions: &[usize]) {
        for &i in positions {
            if let Some(v) = staging.get_mut(i) {
                *v = f32::NAN;
            }
        }
    }
}

/// Rebases shard entries to a worker-local row origin.
pub(crate) fn rebase_entries(entries: &[Rating], row_lo: u32) -> Vec<Rating> {
    entries
        .iter()
        .map(|e| {
            debug_assert!(e.u >= row_lo, "entry row below shard range");
            Rating::new(e.u - row_lo, e.i, e.r)
        })
        .collect()
}

/// Buckets rebased entries by pipeline stream: stream `s` owns columns
/// `[s·n/streams, (s+1)·n/streams)`.
pub(crate) fn bucket_by_stream(entries: &[Rating], n: u32, streams: usize) -> Vec<Vec<Rating>> {
    assert!(streams >= 1);
    let chunk = n.div_ceil(streams as u32).max(1);
    let mut buckets: Vec<Vec<Rating>> = vec![Vec::new(); streams];
    for &e in entries {
        let s = ((e.i / chunk) as usize).min(streams - 1);
        buckets[s].push(e);
    }
    buckets
}

/// Column range of stream `s` (matching [`bucket_by_stream`]).
pub(crate) fn stream_col_range(n: u32, streams: usize, s: usize) -> Range<u32> {
    let chunk = n.div_ceil(streams as u32).max(1);
    let lo = (s as u32 * chunk).min(n);
    let hi = if s + 1 == streams {
        n
    } else {
        ((s as u32 + 1) * chunk).min(n)
    };
    lo..hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_sgd::FactorMatrix;

    fn make_state(speed: f64, entries: Vec<Rating>) -> WorkerState {
        WorkerState {
            spec: WorkerSpec::cpu(2).throttled(speed),
            entries,
            stream_buckets: Vec::new(),
            row_range: 0..10,
            local_p: SharedFactors::from_matrix(&FactorMatrix::random(10, 4, 1)),
            local_q: SharedFactors::from_matrix(&FactorMatrix::random(8, 4, 2)),
            optimizer: Optimizer::Sgd,
            adagrad: None,
            momentum: None,
            schedule: Schedule::Stripe,
        }
    }

    fn entries(count: usize) -> Vec<Rating> {
        (0..count)
            .map(|j| Rating::new((j % 10) as u32, (j % 8) as u32, 3.0))
            .collect()
    }

    #[test]
    fn compute_updates_factors() {
        let state = make_state(1.0, entries(500));
        let before = state.local_q.snapshot();
        let elapsed = state.compute(&state.entries, 0.05, 0.0, 0.0);
        assert!(elapsed > Duration::ZERO);
        assert_ne!(state.local_q.snapshot(), before);
    }

    #[test]
    fn throttled_worker_is_slower() {
        let work = entries(200_000);
        let fast = make_state(1.0, work.clone());
        let slow = make_state(0.25, work);
        let t_fast = fast.compute(&fast.entries, 0.01, 0.0, 0.0);
        let t_slow = slow.compute(&slow.entries, 0.01, 0.0, 0.0);
        // Target is 4×; accept ≥ 2× to keep the test robust on loaded CI.
        assert!(
            t_slow > t_fast * 2,
            "throttle ineffective: fast {t_fast:?} slow {t_slow:?}"
        );
    }

    #[test]
    fn rebase_shifts_rows() {
        let shard = vec![Rating::new(5, 1, 1.0), Rating::new(9, 2, 2.0)];
        let rebased = rebase_entries(&shard, 5);
        assert_eq!(rebased[0].u, 0);
        assert_eq!(rebased[1].u, 4);
        assert_eq!(rebased[1].i, 2);
    }

    #[test]
    fn stream_buckets_partition_by_column() {
        let all = entries(100);
        let buckets = bucket_by_stream(&all, 8, 3);
        assert_eq!(buckets.iter().map(Vec::len).sum::<usize>(), 100);
        for (s, bucket) in buckets.iter().enumerate() {
            let range = stream_col_range(8, 3, s);
            for e in bucket {
                assert!(range.contains(&e.i), "col {} outside {:?}", e.i, range);
            }
        }
    }

    #[test]
    fn stream_ranges_tile_the_columns() {
        for (n, streams) in [(8u32, 3usize), (10, 4), (5, 5), (3, 8), (100, 1)] {
            let mut covered = 0u32;
            for s in 0..streams {
                let r = stream_col_range(n, streams, s);
                assert_eq!(r.start, covered.min(n));
                covered = r.end.max(covered);
            }
            assert_eq!(covered, n, "n={n} streams={streams}");
        }
    }

    #[test]
    fn rows_counts_range() {
        let state = make_state(1.0, vec![]);
        assert_eq!(state.rows(), 10);
    }

    #[test]
    fn poison_push_hits_planned_cells_only() {
        let state = make_state(1.0, vec![]);
        let mut buf = vec![1.0f32; 8];
        state.poison_push(&mut buf, &[2, 5, 99]); // 99 out of range: ignored
        for (i, v) in buf.iter().enumerate() {
            if i == 2 || i == 5 {
                assert!(v.is_nan());
            } else {
                assert_eq!(*v, 1.0);
            }
        }
    }
}
